#include "src/explore/explorer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>
#include <unordered_set>
#include <utility>

#include "src/explore/hash.h"
#include "src/explore/pool.h"
#include "src/pcr/checkpoint.h"
#include "src/pcr/errors.h"
#include "src/pcr/fiber.h"
#include "src/trace/metrics.h"

namespace explore {

namespace {

std::vector<Decision> TrimTrailingDefaults(std::vector<Decision> decisions) {
  while (!decisions.empty() && decisions.back() == 0) {
    decisions.pop_back();
  }
  return decisions;
}

using ProfileClock = std::chrono::steady_clock;

int64_t NsSince(ProfileClock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(ProfileClock::now() - start)
      .count();
}

double SecSince(ProfileClock::time_point start) {
  return static_cast<double>(NsSince(start)) * 1e-9;
}

}  // namespace

Explorer::Explorer(ExploreOptions options) : options_(std::move(options)) {}

ScheduleOutcome Explorer::RunPlan(const Plan& plan, int schedule_index, const TestBody& body,
                                  trace::Tracer* capture, WorkerArena* arena,
                                  std::vector<ConsultRecord>* consult_log) {
  pcr::Config config = options_.base_config;
  config.seed = plan.runtime_seed;
  config.trace_events = true;  // the trace is the whole point
  if (arena != nullptr) {
    config.stack_pool = &arena->stacks;
  }

  ScheduleOutcome outcome;
  outcome.schedule_index = schedule_index;

  RecordingPerturber recorder(plan.policy);
  ReplayPerturber replayer(plan.replay);
  fault::Injector injector(plan.fault_plan);

  pcr::Runtime rt(config);
  if (arena != nullptr) {
    rt.tracer().AdoptEventBuffer(std::move(arena->trace_buffer));
  }
  TestContext ctx;
  if (plan.replay_mode) {
    rt.scheduler().set_perturber(&replayer);
  } else {
    rt.scheduler().set_perturber(&recorder);
    if (consult_log != nullptr) {
      recorder.EnableConsultLog(&rt.tracer());  // the baseline's decision-density sample
    }
  }
  if (plan.fault_plan.enabled()) {
    rt.scheduler().set_fault_injector(&injector);
  }
  const auto run_start = ProfileClock::now();
  try {
    body(rt, ctx);
  } catch (const std::exception& e) {
    ctx.Fail(std::string("uncaught exception: ") + e.what());
  }
  rt.Shutdown();
  rt.scheduler().set_perturber(nullptr);
  rt.scheduler().set_fault_injector(nullptr);
  run_ns_.fetch_add(NsSince(run_start), std::memory_order_relaxed);
  fiber_switches_.fetch_add(rt.scheduler().fiber_switches(), std::memory_order_relaxed);
  stack_acquires_.fetch_add(rt.scheduler().stack_acquires(), std::memory_order_relaxed);
  stack_pool_hits_.fetch_add(rt.scheduler().stack_pool_hits(), std::memory_order_relaxed);

  if (capture != nullptr) {
    // Symbol ids in the captured events are only meaningful against the run's own table, so
    // the capture tracer's table is replaced wholesale (SymbolTable copies rebuild the index).
    capture->symbols() = rt.tracer().symbols();
    for (const trace::Event& e : rt.tracer().view()) {
      capture->Record(e);
    }
  }

  FillOutcome(rt.tracer(), ctx,
              TrimTrailingDefaults(plan.replay_mode ? replayer.consumed()
                                                    : recorder.decisions()),
              recorder.preempt_points_seen(),
              plan.replay_mode ? 0 : recorder.total_consults(), injector.fired(),
              plan.runtime_seed, plan.fault_plan, schedule_index, &outcome);
  if (consult_log != nullptr && !plan.replay_mode) {
    *consult_log = recorder.consult_log();
  }
  if (arena != nullptr) {
    // Everything that reads the trace (capture, detector, hash) has run; reclaim the buffer's
    // capacity for this worker's next schedule. The runtime's fibers are already torn down
    // (Shutdown above), so their stacks are parked in the arena pool by now too.
    arena->trace_buffer = rt.tracer().TakeEventBuffer();
  }
  return outcome;
}

void Explorer::FillOutcome(trace::Tracer& tracer, const TestContext& ctx,
                           const std::vector<Decision>& decisions, uint64_t preempt_points,
                           uint64_t total_decisions,
                           const std::vector<fault::ScriptedFault>& fired,
                           uint64_t runtime_seed, const fault::Plan& fault_plan,
                           int schedule_index, ScheduleOutcome* out,
                           const TraceHasher* resume_hasher, size_t resume_events,
                           const TraceAnalyzer* resume_analyzer) {
  out->schedule_index = schedule_index;
  const auto detector_start = ProfileClock::now();
  if (resume_analyzer != nullptr) {
    // O(suffix) analysis: the detector is a left fold over the event stream, so resuming a
    // prefix-fed analyzer over events [resume_events, end) yields exactly the findings of a
    // full-trace pass (the equivalence suite checks this against from-zero mode).
    TraceAnalyzer analyzer(*resume_analyzer);
    for (const trace::Event& e : tracer.view(resume_events)) {
      analyzer.Feed(e);
    }
    out->findings = analyzer.Finish();
  } else {
    out->findings = AnalyzeTrace(tracer, options_.detector);
  }
  detector_ns_.fetch_add(NsSince(detector_start), std::memory_order_relaxed);
  if (resume_hasher != nullptr) {
    TraceHasher hasher = *resume_hasher;
    for (const trace::Event& e : tracer.view(resume_events)) {
      hasher.Mix(e);
    }
    out->trace_hash = hasher.value();
  } else {
    out->trace_hash = TraceHash(tracer);
  }
  if (options_.collect_coverage) {
    out->coverage = TracePrefixHashes(tracer, options_.coverage_stride);
    for (uint64_t& h : out->coverage) {
      h ^= options_.coverage_salt;  // scenario-scope the state fingerprints too
    }
    std::vector<uint64_t> edges = CollectTraceCoverage(tracer, options_.coverage_salt);
    out->coverage.insert(out->coverage.end(), edges.begin(), edges.end());
    std::sort(out->coverage.begin(), out->coverage.end());
    out->coverage.erase(std::unique(out->coverage.begin(), out->coverage.end()),
                        out->coverage.end());
  }
  out->failures = ctx.failures();
  if (options_.fail_on_findings) {
    for (const Finding& f : out->findings) {
      out->failures.push_back(std::string(FindingKindName(f.kind)) + ": " + f.detail);
    }
  }
  out->failed = !out->failures.empty();
  out->preempt_points = preempt_points;
  out->total_decisions = total_decisions;
  out->fired_faults = fired;
  out->repro = EncodeRepro(options_.scenario_name, runtime_seed, decisions,
                           fault_plan.enabled() ? fault_plan.Encode() : std::string());
}

namespace {

// Copies one group member's outcome into another cell of the same group; everything but the
// schedule index is byte-identical by construction (shared prefix + matching fingerprint).
void CopyOutcome(const ScheduleOutcome& src, int schedule_index, ScheduleOutcome* dst) {
  *dst = src;
  dst->schedule_index = schedule_index;
}

// Exec-fiber stack: holds the scenario body's own frame plus the scheduler run loop, while
// every simulated thread runs on its own fiber stack.
constexpr size_t kExecStackBytes = 256 * 1024;

// Cells covered by one child subtree rooted at tree level `level` (1-based): the product of
// the fanouts strictly below that level. Leaves (level == fanout.size()) have stride 1.
int SubtreeStride(const std::vector<int>& fanout, size_t level) {
  int stride = 1;
  for (size_t l = level; l < fanout.size(); ++l) {
    stride *= fanout[l];
  }
  return stride;
}

// A leaf run can anchor dpor pruning only when copying its outcome over a sibling is provably
// lossless: it passed with no findings and no fired faults, and its consultation log is
// complete (one record per consultation, nowhere near the recording cap).
bool WitnessEligible(const ScheduleOutcome& out, const RecordingPerturber& recorder) {
  return !out.failed && out.findings.empty() && out.fired_faults.empty() &&
         recorder.total_consults() < kMaxRecordedDecisions &&
         recorder.consult_log().size() == recorder.total_consults();
}

}  // namespace

ScheduleOutcome Explorer::RunGroupMember(const GroupPlan& group, const std::vector<int>& path,
                                         const TestBody& body, WorkerArena* arena,
                                         MemberProbe* probe) {
  pcr::Config config = options_.base_config;
  config.seed = group.runtime_seed;
  config.trace_events = true;
  if (arena != nullptr) {
    config.stack_pool = &arena->stacks;
  }

  PerturbPolicy policy;
  policy.seed = group.q0;
  policy.preempt_probability = options_.preempt_probability;
  policy.shuffle_probability = options_.shuffle_probability;
  policy.change_points = group.change_points;
  RecordingPerturber recorder(policy);
  fault::Injector injector(group.fault_plan);

  pcr::Runtime rt(config);
  if (arena != nullptr) {
    rt.tracer().AdoptEventBuffer(std::move(arena->trace_buffer));
  }
  TestContext ctx;
  rt.scheduler().set_perturber(&recorder);
  if (group.fault_plan.enabled()) {
    rt.scheduler().set_fault_injector(&injector);
  }
  if (group.dpor) {
    recorder.EnableConsultLog(&rt.tracer());
  }

  // From-zero execution of the same segmented decision stream the checkpoint path produces:
  // reseeds fire inline at the segment boundaries instead of pausing, so the recorded
  // decisions — and therefore the trace — are byte-identical between the two modes.
  const size_t levels = group.depths.size();
  int reached = 0;
  std::vector<uint64_t> fingerprints(levels + 1, 0);
  const std::function<void(int)> segment_hook = [&](int level) {
    reached = level;
    if (level == 1) {
      recorder.ReseedSegment(MixSeed(group.q0, 1, static_cast<uint64_t>(path[0])));
    } else {
      uint64_t f = TraceHash(rt.tracer());
      fingerprints[static_cast<size_t>(level)] = f;
      recorder.ReseedSegment(MixSeed(group.q0 ^ f, static_cast<uint64_t>(level),
                                     static_cast<uint64_t>(path[static_cast<size_t>(level) - 1])));
    }
  };
  recorder.SetSegmentBoundaries(group.depths);
  recorder.set_segment_hook(&segment_hook);

  const auto run_start = ProfileClock::now();
  try {
    body(rt, ctx);
  } catch (const std::exception& e) {
    ctx.Fail(std::string("uncaught exception: ") + e.what());
  }
  rt.Shutdown();
  rt.scheduler().set_perturber(nullptr);
  rt.scheduler().set_fault_injector(nullptr);
  run_ns_.fetch_add(NsSince(run_start), std::memory_order_relaxed);
  fiber_switches_.fetch_add(rt.scheduler().fiber_switches(), std::memory_order_relaxed);
  stack_acquires_.fetch_add(rt.scheduler().stack_acquires(), std::memory_order_relaxed);
  stack_pool_hits_.fetch_add(rt.scheduler().stack_pool_hits(), std::memory_order_relaxed);

  int cell = 0;
  for (size_t l = 0; l < levels; ++l) {
    cell += path[l] * SubtreeStride(group.fanout, l + 1);
  }
  ScheduleOutcome outcome;
  FillOutcome(rt.tracer(), ctx, TrimTrailingDefaults(recorder.decisions()),
              recorder.preempt_points_seen(), recorder.total_consults(), injector.fired(),
              group.runtime_seed, group.fault_plan, group.first_schedule + cell, &outcome);
  if (probe != nullptr) {
    probe->reached = reached;
    probe->fingerprints = fingerprints;
    probe->witness_valid = group.dpor && reached == static_cast<int>(levels) &&
                           WitnessEligible(outcome, recorder);
    if (probe->witness_valid) {
      const std::vector<ConsultRecord>& log = recorder.consult_log();
      probe->suffix.assign(log.begin() + static_cast<ptrdiff_t>(group.depths.back()), log.end());
      probe->independent_tail_event = IndependentTailStart(rt.tracer());
    } else {
      probe->suffix.clear();
      probe->independent_tail_event = 0;
    }
  }
  if (arena != nullptr) {
    arena->trace_buffer = rt.tracer().TakeEventBuffer();
  }
  return outcome;
}

void Explorer::RunGroupReplay(const GroupPlan& group, const TestBody& body,
                              std::vector<ScheduleOutcome>* outcomes, WorkerArena* arena) {
  outcomes->assign(static_cast<size_t>(group.members), ScheduleOutcome{});
  const int levels = static_cast<int>(group.depths.size());
  PerturbPolicy policy;  // ClassifyLeaf reads only the probabilities
  policy.preempt_probability = options_.preempt_probability;
  policy.shuffle_probability = options_.shuffle_probability;
  std::vector<uint64_t> sorted_points = group.change_points;
  std::sort(sorted_points.begin(), sorted_points.end());

  std::vector<int> path(static_cast<size_t>(levels), 0);

  // Processes the subtree rooted at `level` (children diverge at depths[level-1]), covering
  // cells [first_cell, first_cell + stride-of-this-node). `out` and `probe` come from the
  // already-executed run of this node's all-zeros descendant path.
  std::function<void(int, int, ScheduleOutcome&&, MemberProbe&&)> node =
      [&](int level, int first_cell, ScheduleOutcome&& out, MemberProbe&& probe) {
        const int stride = SubtreeStride(group.fanout, static_cast<size_t>(level));
        const int node_cells =
            std::min(SubtreeStride(group.fanout, static_cast<size_t>(level) - 1),
                     group.members - first_cell);
        if (probe.reached < level) {
          // The run ended before this node's boundary: no reseed below it ever applies, so
          // every cell of the subtree is the same schedule. One execution covers them all.
          (*outcomes)[static_cast<size_t>(first_cell)] = std::move(out);
          for (int m = 1; m < node_cells; ++m) {
            CopyOutcome((*outcomes)[static_cast<size_t>(first_cell)],
                        group.first_schedule + first_cell + m,
                        &(*outcomes)[static_cast<size_t>(first_cell + m)]);
          }
          if (node_cells > 1) {
            pruned_.fetch_add(node_cells - 1, std::memory_order_relaxed);
          }
          return;
        }
        if (level == levels) {
          // Leaf parent: child 0 is the executed witness; classify each sibling's decision
          // stream against its consultation log before paying for a run (sleep-set pruning).
          (*outcomes)[static_cast<size_t>(first_cell)] = std::move(out);
          LeafWitness witness{probe.suffix.data(), probe.suffix.size(),
                              probe.independent_tail_event};
          const uint64_t f = probe.fingerprints[static_cast<size_t>(levels)];
          for (int j = 1; j < node_cells; ++j) {
            if (group.dpor && probe.witness_valid) {
              LeafVerdict v =
                  ClassifyLeaf(MixSeed(group.q0 ^ f, static_cast<uint64_t>(levels),
                                       static_cast<uint64_t>(j)),
                               policy, sorted_points, witness);
              if (v != LeafVerdict::kExecute) {
                CopyOutcome((*outcomes)[static_cast<size_t>(first_cell)],
                            group.first_schedule + first_cell + j,
                            &(*outcomes)[static_cast<size_t>(first_cell + j)]);
                pruned_.fetch_add(1, std::memory_order_relaxed);
                if (v == LeafVerdict::kIdenticalPrune) {
                  dpor_pruned_.fetch_add(1, std::memory_order_relaxed);
                } else {
                  drain_spliced_.fetch_add(1, std::memory_order_relaxed);
                }
                continue;
              }
            }
            path[static_cast<size_t>(levels) - 1] = j;
            (*outcomes)[static_cast<size_t>(first_cell + j)] =
                RunGroupMember(group, path, body, arena, nullptr);
          }
          path[static_cast<size_t>(levels) - 1] = 0;
          return;
        }
        // Inner node: fingerprint at the children's divergence depth -> child that first
        // produced it, within this node only. The reseed below is a pure function of
        // (q0, fingerprint, coordinate), so matching fingerprints guarantee identical
        // continuations — pruning is exact, and both execution modes prune the same cells.
        std::vector<std::pair<uint64_t, int>> seen_f;
        for (int c = 0; c < group.fanout[static_cast<size_t>(level) - 1]; ++c) {
          int child_first = first_cell + c * stride;
          if (child_first >= group.members) {
            break;
          }
          int cells = std::min(stride, group.members - child_first);
          path[static_cast<size_t>(level) - 1] = c;
          ScheduleOutcome child_out;
          MemberProbe child_probe;
          if (c == 0) {
            child_out = std::move(out);
            child_probe = std::move(probe);
          } else {
            child_out = RunGroupMember(group, path, body, arena, &child_probe);
          }
          if (child_probe.reached >= level + 1) {
            const uint64_t f = child_probe.fingerprints[static_cast<size_t>(level) + 1];
            int duplicate_of = -1;
            for (const auto& [known, source] : seen_f) {
              if (known == f) {
                duplicate_of = source;
                break;
              }
            }
            if (duplicate_of >= 0) {
              // Same prefix fingerprint at the child boundary: identical continuations, so
              // copy that child's cells (the probe run just executed is discarded — the
              // checkpoint path detects the match before running any descendant, and pruned
              // counts must agree between modes).
              int src = first_cell + duplicate_of * stride;
              for (int j = 0; j < cells; ++j) {
                CopyOutcome((*outcomes)[static_cast<size_t>(src + j)],
                            group.first_schedule + child_first + j,
                            &(*outcomes)[static_cast<size_t>(child_first + j)]);
              }
              pruned_.fetch_add(cells, std::memory_order_relaxed);
              continue;
            }
            seen_f.emplace_back(f, c);
          }
          node(level + 1, child_first, std::move(child_out), std::move(child_probe));
        }
        path[static_cast<size_t>(level) - 1] = 0;
      };

  MemberProbe probe;
  ScheduleOutcome first = RunGroupMember(group, path, body, arena, &probe);
  node(1, 0, std::move(first), std::move(probe));
}

void Explorer::RunGroupCheckpoint(const GroupPlan& group, const TestBody& body,
                                  std::vector<ScheduleOutcome>* outcomes, WorkerArena* arena) {
  outcomes->assign(static_cast<size_t>(group.members), ScheduleOutcome{});

  pcr::Config config = options_.base_config;
  config.seed = group.runtime_seed;
  config.trace_events = true;
  if (arena != nullptr) {
    config.stack_pool = &arena->stacks;
  }

  PerturbPolicy policy;
  policy.seed = group.q0;
  policy.preempt_probability = options_.preempt_probability;
  policy.shuffle_probability = options_.shuffle_probability;
  policy.change_points = group.change_points;
  // Host-frame run state: the scheduler holds pointers to these, and branching restores them
  // by copy-assignment (their addresses never change, only their contents rewind).
  RecordingPerturber recorder(policy);
  fault::Injector injector(group.fault_plan);

  pcr::Runtime rt(config);
  if (arena != nullptr) {
    rt.tracer().AdoptEventBuffer(std::move(arena->trace_buffer));
  }
  TestContext ctx;
  rt.scheduler().set_perturber(&recorder);
  if (group.fault_plan.enabled()) {
    rt.scheduler().set_fault_injector(&injector);
  }
  if (group.dpor) {
    // The consultation log is plain recorder state, so the copy-assign restores below rewind
    // it in lockstep with the decisions — leaf 0's log is identical to from-zero mode's.
    recorder.EnableConsultLog(&rt.tracer());
  }

  // The body runs on a dedicated exec fiber so the host frame can snapshot it mid-run: at a
  // segment boundary the recorder parks the simulation (CheckpointPause), the scheduler fires
  // the checkpoint hook from the exec stack, and the hook suspends the exec fiber — leaving
  // every fiber quiescent with the host in control.
  int pause_level = 0;
  const std::function<void(int)> segment_hook = [&](int level) {
    pause_level = level;
    rt.scheduler().CheckpointPause();
  };
  recorder.SetSegmentBoundaries(group.depths);
  recorder.set_segment_hook(&segment_hook);

  pcr::StackPool local_stacks;
  pcr::StackPool& exec_stacks = arena != nullptr ? arena->stacks : local_stacks;
  pcr::Fiber exec(
      [&] {
        try {
          try {
            body(rt, ctx);
          } catch (const std::exception& e) {
            ctx.Fail(std::string("uncaught exception: ") + e.what());
          }
          rt.Shutdown();
        } catch (const pcr::CheckpointAbort&) {
          // Group abandoned with this execution suspended mid-run: unwind quietly; the host
          // already shut the simulated threads down.
        }
      },
      exec_stacks.Acquire(kExecStackBytes), &exec_stacks);
  rt.scheduler().set_checkpoint_hook([&exec] { exec.Suspend(); });

  // Restores rewind the scheduler's own counters, so profile deltas are harvested per executed
  // segment (each segment runs exactly once — that is the point).
  int64_t base_switches = 0;
  int64_t base_acquires = 0;
  int64_t base_hits = 0;
  auto harvest = [&] {
    fiber_switches_.fetch_add(rt.scheduler().fiber_switches() - base_switches,
                              std::memory_order_relaxed);
    stack_acquires_.fetch_add(rt.scheduler().stack_acquires() - base_acquires,
                              std::memory_order_relaxed);
    stack_pool_hits_.fetch_add(rt.scheduler().stack_pool_hits() - base_hits,
                               std::memory_order_relaxed);
    base_switches = rt.scheduler().fiber_switches();
    base_acquires = rt.scheduler().stack_acquires();
    base_hits = rt.scheduler().stack_pool_hits();
  };
  auto resync = [&] {
    base_switches = rt.scheduler().fiber_switches();
    base_acquires = rt.scheduler().stack_acquires();
    base_hits = rt.scheduler().stack_pool_hits();
  };

  // Per-runtime observability: the same counters land in ExploreProfile; these make them
  // visible through the metrics registry when Config::metrics is on.
  trace::Counter* m_saves = rt.scheduler().MetricCounter("explore.checkpoint.saves");
  trace::Counter* m_resumes = rt.scheduler().MetricCounter("explore.checkpoint.resumes");
  trace::Counter* m_bytes = rt.scheduler().MetricCounter("explore.checkpoint.bytes");
  trace::Counter* m_pruned = rt.scheduler().MetricCounter("explore.pruned");
  trace::Counter* m_dpor = rt.scheduler().MetricCounter("explore.dpor.pruned");
  trace::Counter* m_splice = rt.scheduler().MetricCounter("explore.drain.spliced");
  int64_t group_saves = 0;
  int64_t group_resumes = 0;
  int64_t group_bytes = 0;
  int64_t group_pruned = 0;

  auto fill_cell = [&](int cell, const TraceHasher* resume_hasher = nullptr,
                       size_t resume_events = 0,
                       const TraceAnalyzer* resume_analyzer = nullptr) {
    FillOutcome(rt.tracer(), ctx, TrimTrailingDefaults(recorder.decisions()),
                recorder.preempt_points_seen(), recorder.total_consults(), injector.fired(),
                group.runtime_seed, group.fault_plan, group.first_schedule + cell,
                &(*outcomes)[static_cast<size_t>(cell)], resume_hasher, resume_events,
                resume_analyzer);
  };

  const int levels = static_cast<int>(group.depths.size());
  std::vector<uint64_t> sorted_points = group.change_points;
  std::sort(sorted_points.begin(), sorted_points.end());

  // Host-frame snapshot taken alongside each checkpoint: the run state the scheduler's
  // pointers refer to, plus the incremental trace folds carried to the pause point. The
  // checkpoint is the last member so it is destroyed first (nothing here depends on it).
  struct NodeState {
    RecordingPerturber recorder;
    fault::Injector injector;
    TestContext ctx;
    TraceHasher hasher;
    TraceAnalyzer analyzer;
    size_t events = 0;
    uint64_t fingerprint = 0;
    std::unique_ptr<pcr::Checkpoint> ckpt;
  };

  // Folds the events since `base` into a fresh NodeState (no checkpoint yet: siblings with a
  // duplicate fingerprint are pruned before a snapshot is spent on them).
  auto fold_node = [&](const TraceHasher& base_hasher, const TraceAnalyzer& base_analyzer,
                       size_t base_events) {
    NodeState n{recorder, injector, ctx, base_hasher, base_analyzer, 0, 0, nullptr};
    for (const trace::Event& e : rt.tracer().view(base_events)) {
      n.hasher.Mix(e);
      n.analyzer.Feed(e);
    }
    n.events = rt.tracer().size();
    n.fingerprint = n.hasher.value();
    return n;
  };
  auto snapshot_node = [&](NodeState* n) {
    n->ckpt = std::make_unique<pcr::Checkpoint>(rt.scheduler(), rt.tracer(), &exec);
    ++group_saves;
    group_bytes += static_cast<int64_t>(n->ckpt->bytes());
  };

  int64_t group_dpor = 0;
  int64_t group_splice = 0;

  // Processes the subtree rooted at `level`: the execution is paused at depths[level-1] in the
  // state `at` snapshots, and the node covers cells [first_cell, first_cell + its stride).
  // Child NodeStates live inside one loop iteration, so checkpoints die newest-first (LIFO
  // fiber pins) before the parent's next restore.
  std::function<void(int, int, NodeState&)> descend = [&](int level, int first_cell,
                                                          NodeState& at) {
    const int stride = SubtreeStride(group.fanout, static_cast<size_t>(level));
    const bool leaf_level = level == levels;
    std::vector<std::pair<uint64_t, int>> seen_f;  // child-boundary fingerprint -> child index
    // Leaf-parent witness: child 0's consultation suffix, copied out before any restore
    // rewinds the recorder's log.
    bool witness_valid = false;
    std::vector<ConsultRecord> wit_suffix;
    uint64_t wit_estar = 0;
    for (int c = 0; c < group.fanout[static_cast<size_t>(level) - 1]; ++c) {
      int child_first = first_cell + c * stride;
      if (child_first >= group.members) {
        break;
      }
      int cells = std::min(stride, group.members - child_first);
      uint64_t child_seed = level == 1
                                ? MixSeed(group.q0, 1, static_cast<uint64_t>(c))
                                : MixSeed(group.q0 ^ at.fingerprint,
                                          static_cast<uint64_t>(level),
                                          static_cast<uint64_t>(c));
      if (leaf_level && c > 0 && group.dpor && witness_valid) {
        // Sleep-set check before paying for restore + suffix: pre-simulate this leaf's
        // decision stream over the witness's consultation log.
        LeafVerdict v = ClassifyLeaf(child_seed, policy, sorted_points,
                                     {wit_suffix.data(), wit_suffix.size(), wit_estar});
        if (v != LeafVerdict::kExecute) {
          CopyOutcome((*outcomes)[static_cast<size_t>(first_cell)],
                      group.first_schedule + child_first,
                      &(*outcomes)[static_cast<size_t>(child_first)]);
          ++group_pruned;
          pruned_.fetch_add(1, std::memory_order_relaxed);
          if (v == LeafVerdict::kIdenticalPrune) {
            ++group_dpor;
            dpor_pruned_.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++group_splice;
            drain_spliced_.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
      }
      if (c > 0) {
        harvest();  // an abandoned child's segment would otherwise be rewound uncounted
        at.ckpt->Restore();
        ++group_resumes;
        resync();
        recorder = at.recorder;
        injector = at.injector;
        ctx = at.ctx;
      }
      recorder.ReseedSegment(child_seed);
      pause_level = 0;
      const auto seg_start = ProfileClock::now();
      exec.Resume();
      run_ns_.fetch_add(NsSince(seg_start), std::memory_order_relaxed);
      if (exec.finished()) {
        // Ran to completion: at leaf level that is the schedule itself (stride 1); at an inner
        // level the deeper reseeds never applied, so one schedule covers the whole subtree.
        harvest();
        fill_cell(child_first, &at.hasher, at.events, &at.analyzer);
        for (int j = 1; j < cells; ++j) {
          CopyOutcome((*outcomes)[static_cast<size_t>(child_first)],
                      group.first_schedule + child_first + j,
                      &(*outcomes)[static_cast<size_t>(child_first + j)]);
        }
        if (cells > 1) {
          group_pruned += cells - 1;
          pruned_.fetch_add(cells - 1, std::memory_order_relaxed);
        }
        if (leaf_level && c == 0 && group.dpor) {
          witness_valid = WitnessEligible((*outcomes)[static_cast<size_t>(child_first)],
                                          recorder) &&
                          recorder.consult_log().size() > group.depths.back();
          if (witness_valid) {
            const std::vector<ConsultRecord>& log = recorder.consult_log();
            wit_suffix.assign(log.begin() + static_cast<ptrdiff_t>(group.depths.back()),
                              log.end());
            wit_estar = IndependentTailStart(rt.tracer());
          }
        }
        continue;
      }
      // Paused at depths[level]: fingerprint the trace prefix incrementally and dedup against
      // siblings before spending a checkpoint on it. The reseed below the pause is a pure
      // function of (q0, fingerprint, coordinate), so matching fingerprints guarantee
      // identical continuations — the paused execution is abandoned; the next sibling (or the
      // group epilogue) rewinds past it.
      NodeState child = fold_node(at.hasher, at.analyzer, at.events);
      int duplicate_of = -1;
      for (const auto& [known, source] : seen_f) {
        if (known == child.fingerprint) {
          duplicate_of = source;
          break;
        }
      }
      if (duplicate_of >= 0) {
        int src = first_cell + duplicate_of * stride;
        for (int j = 0; j < cells; ++j) {
          CopyOutcome((*outcomes)[static_cast<size_t>(src + j)],
                      group.first_schedule + child_first + j,
                      &(*outcomes)[static_cast<size_t>(child_first + j)]);
        }
        group_pruned += cells;
        pruned_.fetch_add(cells, std::memory_order_relaxed);
        continue;
      }
      seen_f.emplace_back(child.fingerprint, c);
      snapshot_node(&child);
      descend(level + 1, child_first, child);
    }
  };

  // Phase 1: execute the shared prefix up to the first boundary.
  const auto prefix_start = ProfileClock::now();
  exec.Resume();
  run_ns_.fetch_add(NsSince(prefix_start), std::memory_order_relaxed);

  std::unique_ptr<NodeState> root;
  if (exec.finished()) {
    // The whole run consults fewer than depths[0] decisions: every member is the same schedule.
    harvest();
    fill_cell(0);
    for (int m = 1; m < group.members; ++m) {
      CopyOutcome((*outcomes)[0], group.first_schedule + m,
                  &(*outcomes)[static_cast<size_t>(m)]);
    }
    if (group.members > 1) {
      group_pruned = group.members - 1;
      pruned_.fetch_add(group_pruned, std::memory_order_relaxed);
    }
  } else {
    // Paused at depths[0]. Snapshot the simulation plus the host-frame run state.
    root = std::make_unique<NodeState>(
        fold_node(TraceHasher{}, TraceAnalyzer(options_.detector), 0));
    snapshot_node(root.get());
    descend(1, 0, *root);
  }

  if (!exec.finished()) {
    // The last branch was pruned at its pause point: kill the simulated threads from the host,
    // then unwind the suspended body via CheckpointAbort.
    const auto teardown_start = ProfileClock::now();
    rt.Shutdown();
    rt.scheduler().RequestCheckpointAbort();
    exec.Resume();
    run_ns_.fetch_add(NsSince(teardown_start), std::memory_order_relaxed);
    harvest();
  }
  root.reset();  // inner-node checkpoints already died inside descend (newest-first)
  rt.scheduler().set_checkpoint_hook(nullptr);
  rt.scheduler().set_perturber(nullptr);
  rt.scheduler().set_fault_injector(nullptr);

  checkpoint_saves_.fetch_add(group_saves, std::memory_order_relaxed);
  checkpoint_resumes_.fetch_add(group_resumes, std::memory_order_relaxed);
  checkpoint_bytes_.fetch_add(group_bytes, std::memory_order_relaxed);
  trace::MetricAdd(m_saves, group_saves);
  trace::MetricAdd(m_resumes, group_resumes);
  trace::MetricAdd(m_bytes, group_bytes);
  trace::MetricAdd(m_pruned, group_pruned);
  trace::MetricAdd(m_dpor, group_dpor);
  trace::MetricAdd(m_splice, group_splice);

  if (arena != nullptr) {
    arena->trace_buffer = rt.tracer().TakeEventBuffer();
  }
}

bool Explorer::SameFailure(const ScheduleOutcome& a, const ScheduleOutcome& b) {
  if (!a.failed || !b.failed) {
    return false;
  }
  if (!a.findings.empty() && !b.findings.empty()) {
    return a.findings.front().SameBug(b.findings.front());
  }
  if (a.findings.empty() != b.findings.empty()) {
    return false;
  }
  // No detector findings on either side: fall back to the first assertion message. Messages
  // embed stable text per Check call site, so this groups failures by which check tripped.
  return !a.failures.empty() && !b.failures.empty() && a.failures.front() == b.failures.front();
}

ScheduleOutcome Explorer::Minimize(const ScheduleOutcome& outcome, const TestBody& body,
                                   WorkerArena* arena) {
  std::string scenario;
  uint64_t runtime_seed = 0;
  std::vector<Decision> decisions;
  std::string fault_text;
  if (!DecodeRepro(outcome.repro, &scenario, &runtime_seed, &decisions, &fault_text)) {
    return outcome;  // shouldn't happen: we produced the string ourselves
  }
  fault::Plan fault_plan = fault::Plan::Decode(fault_text);

  int replays_left = 128;
  auto still_fails = [&](const std::vector<Decision>& candidate,
                         const fault::Plan& candidate_faults, ScheduleOutcome* result) {
    if (replays_left <= 0) {
      return false;
    }
    --replays_left;
    Plan plan;
    plan.runtime_seed = runtime_seed;
    plan.replay = candidate;
    plan.replay_mode = true;
    plan.fault_plan = candidate_faults;
    ScheduleOutcome attempt = RunPlan(plan, outcome.schedule_index, body, nullptr, arena);
    if (SameFailure(outcome, attempt)) {
      *result = std::move(attempt);
      return true;
    }
    return false;
  };

  ScheduleOutcome best = outcome;
  std::vector<Decision> current = decisions;
  fault::Plan current_faults = fault_plan;

  // Phase 1: binary-search the shortest failing prefix (defaults past the cut).
  size_t lo = 0;
  size_t hi = current.size();
  while (lo < hi && replays_left > 0) {
    size_t mid = lo + (hi - lo) / 2;
    std::vector<Decision> prefix(current.begin(), current.begin() + mid);
    ScheduleOutcome attempt;
    if (still_fails(prefix, current_faults, &attempt)) {
      hi = mid;
      best = std::move(attempt);
    } else {
      lo = mid + 1;
    }
  }
  current.resize(std::min(current.size(), hi));

  // Phase 2: zero individual non-default decisions, last first (late perturbations are the
  // likeliest to be incidental).
  for (size_t i = current.size(); i-- > 0 && replays_left > 0;) {
    if (current[i] == 0) {
      continue;
    }
    std::vector<Decision> candidate = current;
    candidate[i] = 0;
    ScheduleOutcome attempt;
    if (still_fails(candidate, current_faults, &attempt)) {
      current = std::move(candidate);
      best = std::move(attempt);
    }
  }

  // Phase 3: pin a probabilistic plan down to a script of exactly the faults that fired in the
  // current best run. The injector draws the RNG only at armed sites, so the script reproduces
  // the identical firings — the repro then names its faults instead of hiding them in a seed.
  if (current_faults.rate > 0 && replays_left > 0) {
    fault::Plan scripted;
    scripted.script = best.fired_faults;
    ScheduleOutcome attempt;
    if (still_fails(current, scripted, &attempt)) {
      current_faults = std::move(scripted);
      best = std::move(attempt);
    }
  }

  // Phase 4: drop scripted faults one at a time, last first, keeping only the ones the
  // failure actually needs.
  for (size_t i = current_faults.script.size(); i-- > 0 && replays_left > 0;) {
    fault::Plan candidate = current_faults;
    candidate.script.erase(candidate.script.begin() + static_cast<ptrdiff_t>(i));
    ScheduleOutcome attempt;
    if (still_fails(current, candidate, &attempt)) {
      current_faults = std::move(candidate);
      best = std::move(attempt);
    }
  }
  return best;
}

ScheduleOutcome Explorer::Replay(const std::string& repro, const TestBody& body,
                                 trace::Tracer* capture) {
  std::string scenario;
  std::string fault_text;
  Plan plan;
  plan.replay_mode = true;
  if (!DecodeRepro(repro, &scenario, &plan.runtime_seed, &plan.replay, &fault_text)) {
    throw pcr::UsageError("malformed repro string: " + repro);
  }
  plan.fault_plan = fault::Plan::Decode(fault_text);  // throws UsageError on a bad field
  return RunPlan(plan, -1, body, capture);
}

ExploreResult Explorer::Explore(const TestBody& body) {
  ExploreResult result;
  std::unordered_set<uint64_t> hashes;
  run_ns_.store(0, std::memory_order_relaxed);
  detector_ns_.store(0, std::memory_order_relaxed);
  fiber_switches_.store(0, std::memory_order_relaxed);
  stack_acquires_.store(0, std::memory_order_relaxed);
  stack_pool_hits_.store(0, std::memory_order_relaxed);
  checkpoint_saves_.store(0, std::memory_order_relaxed);
  checkpoint_resumes_.store(0, std::memory_order_relaxed);
  checkpoint_bytes_.store(0, std::memory_order_relaxed);
  pruned_.store(0, std::memory_order_relaxed);
  dpor_pruned_.store(0, std::memory_order_relaxed);
  drain_spliced_.store(0, std::memory_order_relaxed);
  const auto total_start = ProfileClock::now();

  auto note_hash = [&hashes](uint64_t h) { hashes.insert(h); };

  // One arena per pool worker, alive for the whole Explore call: each worker's schedules
  // inherit its predecessor's stack pool and trace-buffer capacity instead of paying mmap +
  // mprotect + heap growth per Runtime. Outcome bytes cannot depend on which arena served a
  // schedule (see WorkerArena).
  int workers = options_.workers > 0 ? options_.workers : WorkerPool::HardwareWorkers();
  WorkerPool pool(workers);
  std::vector<std::unique_ptr<WorkerArena>> arenas;
  arenas.reserve(static_cast<size_t>(pool.workers()));
  for (int w = 0; w < pool.workers(); ++w) {
    arenas.push_back(std::make_unique<WorkerArena>());
  }

  // Schedule 0: the unperturbed baseline. Its horizon seeds PCT change-point placement. It
  // runs on the calling thread, which is pool worker 0.
  Plan baseline_plan;
  baseline_plan.runtime_seed = options_.base_config.seed;
  baseline_plan.fault_plan = options_.fault_plan;  // verbatim: the reference fault run
  std::vector<ConsultRecord> baseline_log;
  result.baseline = RunPlan(baseline_plan, 0, body, nullptr, arenas[0].get(), &baseline_log);
  result.profile.baseline_sec = SecSince(total_start);
  result.schedules_run = 1;
  note_hash(result.baseline.trace_hash);
  uint64_t horizon = std::max<uint64_t>(result.baseline.preempt_points, 16);
  // The segment boundaries live in total-consultation space (ForcePreempt + PickNext); place
  // them inside the baseline's decision horizon so most runs actually cross them.
  uint64_t decision_space = std::max<uint64_t>(result.baseline.total_decisions, 16);

  // Budget-tiered group geometry: crossing depths[k] reseeds level k+1, so one group of
  // prod(fanout) schedules shares one prefix execution (and each subtree shares its segment).
  // Bigger budgets amortize deeper — budgets >= 8192 add a third divergence level so the
  // per-leaf suffix shrinks again; tiny budgets keep groups small so the search still spreads
  // across many independent prefixes.
  std::vector<int> fanout;
  std::vector<double> fractions;  // target event-mass per boundary (see below)
  if (options_.budget >= 8192) {
    fanout = {4, 4, 8};
    fractions = {0.45, 0.72, 0.90};
  } else if (options_.budget >= 1024) {
    fanout = {4, 16};
    fractions = {0.55, 1.30};
  } else if (options_.budget >= 256) {
    fanout = {2, 3};
    fractions = {0.45, 0.80};
  } else if (options_.budget >= 64) {
    fanout = {2, 2};
    fractions = {0.45, 0.80};
  } else {
    fanout = {2, 1};
    fractions = {0.45, 0.80};
  }
  const size_t levels = fanout.size();
  int per_group = 1;
  for (int f : fanout) {
    per_group *= f;
  }

  // Adaptive boundary placement: the consultation index space is not uniform in work — early
  // consultations interleave thread setup, late ones sit in teardown. The baseline's consult
  // log maps each consultation to its trace position, so a boundary targeting fraction f of
  // the run's *event mass* lands where f of the actual work has happened, independent of how
  // consultations cluster. Each boundary gets a ±0.04-mass jitter window; per-group draws
  // inside the window decorrelate the groups' divergence points. Falls back to fractions of
  // the raw decision count when the baseline log is too thin to estimate density.
  std::vector<uint64_t> win_lo(levels);
  std::vector<uint64_t> win_hi(levels);
  {
    auto mass_index = [&](double f) -> uint64_t {
      const uint64_t span = baseline_log.back().event_index + 1;
      const auto target = static_cast<uint64_t>(f * static_cast<double>(span));
      if (target >= span) {
        // Fractions past 1.0 extrapolate beyond the baseline run at its mean decision
        // density: perturbed runs consult more than the unperturbed baseline (every forced
        // preempt adds context-switch decisions downstream), so a boundary meant to sit in
        // the *perturbed* tail must overshoot the baseline's own consult count.
        return baseline_log.size() +
               static_cast<uint64_t>((f - 1.0) * static_cast<double>(baseline_log.size()));
      }
      size_t lo = 0;
      size_t hi = baseline_log.size();
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (baseline_log[mid].event_index < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    };
    const bool adaptive = baseline_log.size() >= 16;
    for (size_t l = 0; l < levels; ++l) {
      if (adaptive) {
        win_lo[l] = mass_index(fractions[l] - 0.04);
        win_hi[l] = mass_index(fractions[l] + 0.04);
      } else {
        win_lo[l] =
            static_cast<uint64_t>(static_cast<double>(decision_space) * (fractions[l] - 0.04));
        win_hi[l] =
            static_cast<uint64_t>(static_cast<double>(decision_space) * (fractions[l] + 0.04));
      }
      // Clamp so every deeper boundary still has room to be strictly later. The cap allows
      // extrapolated boundaries up to twice the baseline's decision space: runs that end
      // before a boundary simply never branch there (both execution modes collapse those
      // subtrees to one schedule).
      const uint64_t cap = 2 * decision_space - (levels - l);
      const uint64_t floor = l + 1;
      win_lo[l] = std::clamp<uint64_t>(win_lo[l], floor, cap);
      win_hi[l] = std::clamp<uint64_t>(win_hi[l], win_lo[l] + 1, cap + 1);
    }
  }
  result.profile.boundary_d1 = (win_lo[0] + win_hi[0] - 1) / 2;
  result.profile.boundary_d2 = (win_lo[1] + win_hi[1] - 1) / 2;
  result.profile.boundary_d3 = levels >= 3 ? (win_lo[2] + win_hi[2] - 1) / 2 : 0;

  // Every group plan is precomputed from (options, baseline) before anything executes. The
  // horizon is fixed at the baseline's: letting it grow with each completed schedule would
  // make plan i a function of schedules 0..i-1, serializing the whole sweep. With plans pure,
  // any worker can run any group and the result cannot depend on who ran what when.
  std::mt19937_64 master(options_.seed);
  std::vector<GroupPlan> groups;
  int sweep_budget = options_.budget > 1 ? options_.budget - 1 : 0;
  groups.reserve(static_cast<size_t>((sweep_budget + per_group - 1) / per_group));
  for (int g = 0; g * per_group < sweep_budget; ++g) {
    GroupPlan group;
    group.group_index = g;
    group.first_schedule = 1 + g * per_group;
    group.fanout = fanout;
    group.members = std::min(per_group, options_.budget - group.first_schedule);
    group.runtime_seed =
        options_.sweep_runtime_seed ? (master() | 1) : options_.base_config.seed;
    group.q0 = master();
    // PCT-style depth: group g gets g % 4 guaranteed change points within the baseline
    // horizon. Depth cycles 0..3 so shallow bugs are not starved by deep probing.
    int depth = g % 4;
    for (int d = 0; d < depth; ++d) {
      group.change_points.push_back(master() % horizon);
    }
    // The master RNG is stepped for fault seeds only when a fault plan is set, so fault-free
    // Explore calls keep drawing the same seed stream whether or not faults are in play.
    if (options_.fault_plan.enabled()) {
      group.fault_plan = options_.fault_plan;
      if (options_.sweep_fault_seed) {
        group.fault_plan.seed = master();
      }
    }
    // Boundaries drawn from the adaptive jitter windows: late enough that the shared prefix
    // amortizes real work, early enough that the subtrees still have decisions left to
    // diverge on. Strict monotonicity is restored after the draws (windows can abut).
    group.depths.resize(levels);
    for (size_t l = 0; l < levels; ++l) {
      group.depths[l] = win_lo[l] + master() % std::max<uint64_t>(1, win_hi[l] - win_lo[l]);
    }
    for (size_t l = 1; l < levels; ++l) {
      if (group.depths[l] <= group.depths[l - 1]) {
        group.depths[l] = group.depths[l - 1] + 1;
      }
    }
    // Leaf pruning stays off for fault sweeps: the injector consumes its own RNG along the
    // suffix, so equal decision streams do not imply equal outcomes there.
    group.dpor = options_.dpor && !group.fault_plan.enabled();
    groups.push_back(std::move(group));
  }

  // Fan groups across workers. Each group builds its own Runtime + Tracer and shares nothing
  // but its worker's arena, so groups are embarrassingly parallel; outcomes land in their slot
  // by index. Groups (not schedules) being the work unit is what keeps the pool busy: one
  // coarse unit per dispatch instead of one microsecond-scale run.
  const bool use_checkpoint = options_.checkpoint && pcr::Checkpoint::Supported();
  std::vector<std::vector<ScheduleOutcome>> group_outcomes(groups.size());
  const auto sweep_start = ProfileClock::now();
  pool.Run(groups.size(), [&](size_t worker, size_t g) {
    if (use_checkpoint) {
      RunGroupCheckpoint(groups[g], body, &group_outcomes[g], arenas[worker].get());
    } else {
      RunGroupReplay(groups[g], body, &group_outcomes[g], arenas[worker].get());
    }
  });
  result.profile.sweep_sec = SecSince(sweep_start);

  // Deterministic merge in schedule-index order: identical hashes, dedup decisions and cutoff
  // at any worker count. Outcomes past the max_failures cutoff were executed but are not
  // consumed, matching the serial explorer's early stop.
  std::vector<ScheduleOutcome> distinct;  // unminimized representative per bug
  if (result.baseline.failed) {
    distinct.push_back(result.baseline);
  }
  for (size_t g = 0; g < group_outcomes.size() && distinct.size() < options_.max_failures;
       ++g) {
    for (size_t k = 0;
         k < group_outcomes[g].size() && distinct.size() < options_.max_failures; ++k) {
      ScheduleOutcome& outcome = group_outcomes[g][k];
      ++result.schedules_run;
      note_hash(outcome.trace_hash);
      if (outcome.failed) {
        bool duplicate = false;
        for (const ScheduleOutcome& known : distinct) {
          if (SameFailure(known, outcome)) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          distinct.push_back(std::move(outcome));
        }
      }
    }
  }

  // Minimization is a pure function of (representative, body) — replays run on whatever
  // worker picks them up, one bug per task.
  const auto minimize_start = ProfileClock::now();
  if (options_.minimize && !distinct.empty()) {
    result.failures.resize(distinct.size());
    pool.Run(distinct.size(), [&](size_t worker, size_t k) {
      result.failures[k] = Minimize(distinct[k], body, arenas[worker].get());
    });
  } else {
    result.failures = std::move(distinct);
  }
  result.profile.minimize_sec = SecSince(minimize_start);

  result.distinct_schedules = static_cast<int>(hashes.size());
  result.profile.total_sec = SecSince(total_start);
  result.profile.run_sec =
      static_cast<double>(run_ns_.load(std::memory_order_relaxed)) * 1e-9;
  result.profile.detector_sec =
      static_cast<double>(detector_ns_.load(std::memory_order_relaxed)) * 1e-9;
  result.profile.fiber_switches = fiber_switches_.load(std::memory_order_relaxed);
  result.profile.stack_acquires = stack_acquires_.load(std::memory_order_relaxed);
  result.profile.stack_pool_hits = stack_pool_hits_.load(std::memory_order_relaxed);
  result.profile.checkpoint_saves = checkpoint_saves_.load(std::memory_order_relaxed);
  result.profile.checkpoint_resumes = checkpoint_resumes_.load(std::memory_order_relaxed);
  result.profile.checkpoint_bytes = checkpoint_bytes_.load(std::memory_order_relaxed);
  result.profile.pruned_schedules = pruned_.load(std::memory_order_relaxed);
  result.profile.dpor_pruned = dpor_pruned_.load(std::memory_order_relaxed);
  result.profile.drain_spliced = drain_spliced_.load(std::memory_order_relaxed);
  if (result.profile.total_sec > 0) {
    result.profile.schedules_per_sec = result.schedules_run / result.profile.total_sec;
  }
  return result;
}

}  // namespace explore
