#include "src/explore/explorer.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>
#include <utility>

#include "src/explore/hash.h"
#include "src/explore/pool.h"
#include "src/pcr/errors.h"

namespace explore {

namespace {

std::vector<Decision> TrimTrailingDefaults(std::vector<Decision> decisions) {
  while (!decisions.empty() && decisions.back() == 0) {
    decisions.pop_back();
  }
  return decisions;
}

using ProfileClock = std::chrono::steady_clock;

int64_t NsSince(ProfileClock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(ProfileClock::now() - start)
      .count();
}

double SecSince(ProfileClock::time_point start) {
  return static_cast<double>(NsSince(start)) * 1e-9;
}

}  // namespace

Explorer::Explorer(ExploreOptions options) : options_(std::move(options)) {}

ScheduleOutcome Explorer::RunPlan(const Plan& plan, int schedule_index, const TestBody& body,
                                  trace::Tracer* capture, WorkerArena* arena) {
  pcr::Config config = options_.base_config;
  config.seed = plan.runtime_seed;
  config.trace_events = true;  // the trace is the whole point
  if (arena != nullptr) {
    config.stack_pool = &arena->stacks;
  }

  ScheduleOutcome outcome;
  outcome.schedule_index = schedule_index;

  RecordingPerturber recorder(plan.policy);
  ReplayPerturber replayer(plan.replay);
  fault::Injector injector(plan.fault_plan);

  pcr::Runtime rt(config);
  if (arena != nullptr) {
    rt.tracer().AdoptEventBuffer(std::move(arena->trace_buffer));
  }
  TestContext ctx;
  if (plan.replay_mode) {
    rt.scheduler().set_perturber(&replayer);
  } else {
    rt.scheduler().set_perturber(&recorder);
  }
  if (plan.fault_plan.enabled()) {
    rt.scheduler().set_fault_injector(&injector);
  }
  const auto run_start = ProfileClock::now();
  try {
    body(rt, ctx);
  } catch (const std::exception& e) {
    ctx.Fail(std::string("uncaught exception: ") + e.what());
  }
  rt.Shutdown();
  rt.scheduler().set_perturber(nullptr);
  rt.scheduler().set_fault_injector(nullptr);
  run_ns_.fetch_add(NsSince(run_start), std::memory_order_relaxed);
  fiber_switches_.fetch_add(rt.scheduler().fiber_switches(), std::memory_order_relaxed);
  stack_acquires_.fetch_add(rt.scheduler().stack_acquires(), std::memory_order_relaxed);
  stack_pool_hits_.fetch_add(rt.scheduler().stack_pool_hits(), std::memory_order_relaxed);

  if (capture != nullptr) {
    // Symbol ids in the captured events are only meaningful against the run's own table, so
    // the capture tracer's table is replaced wholesale (SymbolTable copies rebuild the index).
    capture->symbols() = rt.tracer().symbols();
    for (const trace::Event& e : rt.tracer().events()) {
      capture->Record(e);
    }
  }

  const auto detector_start = ProfileClock::now();
  outcome.findings = AnalyzeTrace(rt.tracer(), options_.detector);
  detector_ns_.fetch_add(NsSince(detector_start), std::memory_order_relaxed);
  outcome.trace_hash = TraceHash(rt.tracer());
  if (options_.collect_coverage) {
    outcome.coverage = TracePrefixHashes(rt.tracer(), options_.coverage_stride);
    for (uint64_t& h : outcome.coverage) {
      h ^= options_.coverage_salt;  // scenario-scope the state fingerprints too
    }
    std::vector<uint64_t> edges = CollectTraceCoverage(rt.tracer(), options_.coverage_salt);
    outcome.coverage.insert(outcome.coverage.end(), edges.begin(), edges.end());
    std::sort(outcome.coverage.begin(), outcome.coverage.end());
    outcome.coverage.erase(std::unique(outcome.coverage.begin(), outcome.coverage.end()),
                           outcome.coverage.end());
  }
  outcome.failures = ctx.failures();
  if (options_.fail_on_findings) {
    for (const Finding& f : outcome.findings) {
      outcome.failures.push_back(std::string(FindingKindName(f.kind)) + ": " + f.detail);
    }
  }
  outcome.failed = !outcome.failures.empty();
  outcome.preempt_points = recorder.preempt_points_seen();

  outcome.fired_faults = injector.fired();
  std::vector<Decision> decisions = TrimTrailingDefaults(
      plan.replay_mode ? replayer.consumed() : recorder.decisions());
  outcome.repro =
      EncodeRepro(options_.scenario_name, plan.runtime_seed, decisions,
                  plan.fault_plan.enabled() ? plan.fault_plan.Encode() : std::string());
  if (arena != nullptr) {
    // Everything that reads the trace (capture, detector, hash) has run; reclaim the buffer's
    // capacity for this worker's next schedule. The runtime's fibers are already torn down
    // (Shutdown above), so their stacks are parked in the arena pool by now too.
    arena->trace_buffer = rt.tracer().TakeEventBuffer();
  }
  return outcome;
}

bool Explorer::SameFailure(const ScheduleOutcome& a, const ScheduleOutcome& b) {
  if (!a.failed || !b.failed) {
    return false;
  }
  if (!a.findings.empty() && !b.findings.empty()) {
    return a.findings.front().SameBug(b.findings.front());
  }
  if (a.findings.empty() != b.findings.empty()) {
    return false;
  }
  // No detector findings on either side: fall back to the first assertion message. Messages
  // embed stable text per Check call site, so this groups failures by which check tripped.
  return !a.failures.empty() && !b.failures.empty() && a.failures.front() == b.failures.front();
}

ScheduleOutcome Explorer::Minimize(const ScheduleOutcome& outcome, const TestBody& body,
                                   WorkerArena* arena) {
  std::string scenario;
  uint64_t runtime_seed = 0;
  std::vector<Decision> decisions;
  std::string fault_text;
  if (!DecodeRepro(outcome.repro, &scenario, &runtime_seed, &decisions, &fault_text)) {
    return outcome;  // shouldn't happen: we produced the string ourselves
  }
  fault::Plan fault_plan = fault::Plan::Decode(fault_text);

  int replays_left = 128;
  auto still_fails = [&](const std::vector<Decision>& candidate,
                         const fault::Plan& candidate_faults, ScheduleOutcome* result) {
    if (replays_left <= 0) {
      return false;
    }
    --replays_left;
    Plan plan;
    plan.runtime_seed = runtime_seed;
    plan.replay = candidate;
    plan.replay_mode = true;
    plan.fault_plan = candidate_faults;
    ScheduleOutcome attempt = RunPlan(plan, outcome.schedule_index, body, nullptr, arena);
    if (SameFailure(outcome, attempt)) {
      *result = std::move(attempt);
      return true;
    }
    return false;
  };

  ScheduleOutcome best = outcome;
  std::vector<Decision> current = decisions;
  fault::Plan current_faults = fault_plan;

  // Phase 1: binary-search the shortest failing prefix (defaults past the cut).
  size_t lo = 0;
  size_t hi = current.size();
  while (lo < hi && replays_left > 0) {
    size_t mid = lo + (hi - lo) / 2;
    std::vector<Decision> prefix(current.begin(), current.begin() + mid);
    ScheduleOutcome attempt;
    if (still_fails(prefix, current_faults, &attempt)) {
      hi = mid;
      best = std::move(attempt);
    } else {
      lo = mid + 1;
    }
  }
  current.resize(std::min(current.size(), hi));

  // Phase 2: zero individual non-default decisions, last first (late perturbations are the
  // likeliest to be incidental).
  for (size_t i = current.size(); i-- > 0 && replays_left > 0;) {
    if (current[i] == 0) {
      continue;
    }
    std::vector<Decision> candidate = current;
    candidate[i] = 0;
    ScheduleOutcome attempt;
    if (still_fails(candidate, current_faults, &attempt)) {
      current = std::move(candidate);
      best = std::move(attempt);
    }
  }

  // Phase 3: pin a probabilistic plan down to a script of exactly the faults that fired in the
  // current best run. The injector draws the RNG only at armed sites, so the script reproduces
  // the identical firings — the repro then names its faults instead of hiding them in a seed.
  if (current_faults.rate > 0 && replays_left > 0) {
    fault::Plan scripted;
    scripted.script = best.fired_faults;
    ScheduleOutcome attempt;
    if (still_fails(current, scripted, &attempt)) {
      current_faults = std::move(scripted);
      best = std::move(attempt);
    }
  }

  // Phase 4: drop scripted faults one at a time, last first, keeping only the ones the
  // failure actually needs.
  for (size_t i = current_faults.script.size(); i-- > 0 && replays_left > 0;) {
    fault::Plan candidate = current_faults;
    candidate.script.erase(candidate.script.begin() + static_cast<ptrdiff_t>(i));
    ScheduleOutcome attempt;
    if (still_fails(current, candidate, &attempt)) {
      current_faults = std::move(candidate);
      best = std::move(attempt);
    }
  }
  return best;
}

ScheduleOutcome Explorer::Replay(const std::string& repro, const TestBody& body,
                                 trace::Tracer* capture) {
  std::string scenario;
  std::string fault_text;
  Plan plan;
  plan.replay_mode = true;
  if (!DecodeRepro(repro, &scenario, &plan.runtime_seed, &plan.replay, &fault_text)) {
    throw pcr::UsageError("malformed repro string: " + repro);
  }
  plan.fault_plan = fault::Plan::Decode(fault_text);  // throws UsageError on a bad field
  return RunPlan(plan, -1, body, capture);
}

ExploreResult Explorer::Explore(const TestBody& body) {
  ExploreResult result;
  std::vector<uint64_t> hashes;
  run_ns_.store(0, std::memory_order_relaxed);
  detector_ns_.store(0, std::memory_order_relaxed);
  fiber_switches_.store(0, std::memory_order_relaxed);
  stack_acquires_.store(0, std::memory_order_relaxed);
  stack_pool_hits_.store(0, std::memory_order_relaxed);
  const auto total_start = ProfileClock::now();

  auto note_hash = [&hashes](uint64_t h) {
    if (std::find(hashes.begin(), hashes.end(), h) == hashes.end()) {
      hashes.push_back(h);
    }
  };

  // One arena per pool worker, alive for the whole Explore call: each worker's schedules
  // inherit its predecessor's stack pool and trace-buffer capacity instead of paying mmap +
  // mprotect + heap growth per Runtime. Outcome bytes cannot depend on which arena served a
  // schedule (see WorkerArena).
  int workers = options_.workers > 0 ? options_.workers : WorkerPool::HardwareWorkers();
  WorkerPool pool(workers);
  std::vector<std::unique_ptr<WorkerArena>> arenas;
  arenas.reserve(static_cast<size_t>(pool.workers()));
  for (int w = 0; w < pool.workers(); ++w) {
    arenas.push_back(std::make_unique<WorkerArena>());
  }

  // Schedule 0: the unperturbed baseline. Its horizon seeds PCT change-point placement. It
  // runs on the calling thread, which is pool worker 0.
  Plan baseline_plan;
  baseline_plan.runtime_seed = options_.base_config.seed;
  baseline_plan.fault_plan = options_.fault_plan;  // verbatim: the reference fault run
  result.baseline = RunPlan(baseline_plan, 0, body, nullptr, arenas[0].get());
  result.profile.baseline_sec = SecSince(total_start);
  result.schedules_run = 1;
  note_hash(result.baseline.trace_hash);
  uint64_t horizon = std::max<uint64_t>(result.baseline.preempt_points, 16);

  // Every plan is precomputed from (options, baseline) before anything executes. The horizon
  // is fixed at the baseline's: letting it grow with each completed schedule would make plan i
  // a function of schedules 0..i-1, serializing the whole sweep. With plans pure, any worker
  // can run any schedule and the result cannot depend on who ran what when.
  std::mt19937_64 master(options_.seed);
  std::vector<Plan> plans;
  plans.reserve(options_.budget > 1 ? static_cast<size_t>(options_.budget) - 1 : 0);
  for (int i = 1; i < options_.budget; ++i) {
    Plan plan;
    plan.runtime_seed =
        options_.sweep_runtime_seed ? (master() | 1) : options_.base_config.seed;
    plan.policy.seed = master();
    plan.policy.preempt_probability = options_.preempt_probability;
    plan.policy.shuffle_probability = options_.shuffle_probability;
    // PCT-style depth: schedule i gets i % 4 guaranteed change points within the baseline
    // horizon. Depth cycles 0..3 so shallow bugs are not starved by deep probing.
    int depth = i % 4;
    for (int d = 0; d < depth; ++d) {
      plan.policy.change_points.push_back(master() % horizon);
    }
    // The master RNG is stepped for fault seeds only when a fault plan is set, so fault-free
    // Explore calls keep producing the exact plan streams (and repro strings) they always did.
    if (options_.fault_plan.enabled()) {
      plan.fault_plan = options_.fault_plan;
      if (options_.sweep_fault_seed) {
        plan.fault_plan.seed = master();
      }
    }
    plans.push_back(std::move(plan));
  }

  // Fan schedules across workers. Each RunPlan builds its own Runtime + Tracer and shares
  // nothing but its worker's arena, so schedules are embarrassingly parallel; outcomes land in
  // their slot by index.
  std::vector<ScheduleOutcome> outcomes(plans.size());
  const auto sweep_start = ProfileClock::now();
  pool.Run(plans.size(), [&](size_t worker, size_t k) {
    outcomes[k] = RunPlan(plans[k], static_cast<int>(k) + 1, body, nullptr,
                          arenas[worker].get());
  });
  result.profile.sweep_sec = SecSince(sweep_start);

  // Deterministic merge in schedule-index order: identical hashes, dedup decisions and cutoff
  // at any worker count. Outcomes past the max_failures cutoff were executed but are not
  // consumed, matching the serial explorer's early stop.
  std::vector<ScheduleOutcome> distinct;  // unminimized representative per bug
  if (result.baseline.failed) {
    distinct.push_back(result.baseline);
  }
  for (size_t k = 0; k < outcomes.size() && distinct.size() < options_.max_failures; ++k) {
    ScheduleOutcome& outcome = outcomes[k];
    ++result.schedules_run;
    note_hash(outcome.trace_hash);
    if (outcome.failed) {
      bool duplicate = false;
      for (const ScheduleOutcome& known : distinct) {
        if (SameFailure(known, outcome)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        distinct.push_back(std::move(outcome));
      }
    }
  }

  // Minimization is a pure function of (representative, body) — replays run on whatever
  // worker picks them up, one bug per task.
  const auto minimize_start = ProfileClock::now();
  if (options_.minimize && !distinct.empty()) {
    result.failures.resize(distinct.size());
    pool.Run(distinct.size(), [&](size_t worker, size_t k) {
      result.failures[k] = Minimize(distinct[k], body, arenas[worker].get());
    });
  } else {
    result.failures = std::move(distinct);
  }
  result.profile.minimize_sec = SecSince(minimize_start);

  result.distinct_schedules = static_cast<int>(hashes.size());
  result.profile.total_sec = SecSince(total_start);
  result.profile.run_sec =
      static_cast<double>(run_ns_.load(std::memory_order_relaxed)) * 1e-9;
  result.profile.detector_sec =
      static_cast<double>(detector_ns_.load(std::memory_order_relaxed)) * 1e-9;
  result.profile.fiber_switches = fiber_switches_.load(std::memory_order_relaxed);
  result.profile.stack_acquires = stack_acquires_.load(std::memory_order_relaxed);
  result.profile.stack_pool_hits = stack_pool_hits_.load(std::memory_order_relaxed);
  if (result.profile.total_sec > 0) {
    result.profile.schedules_per_sec = result.schedules_run / result.profile.total_sec;
  }
  return result;
}

}  // namespace explore
