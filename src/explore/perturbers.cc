#include "src/explore/perturbers.h"

#include <algorithm>

#include "src/trace/tracer.h"

namespace explore {

RecordingPerturber::RecordingPerturber(const PerturbPolicy& policy)
    : policy_(policy), rng_(policy.seed) {
  std::sort(policy_.change_points.begin(), policy_.change_points.end());
}

void RecordingPerturber::Record(Decision d) {
  if (decisions_.size() < kMaxRecordedDecisions) {
    decisions_.push_back(d);
  }
}

void RecordingPerturber::AtConsult() {
  uint64_t index = consults_++;
  if (segment_hook_ == nullptr) {
    return;
  }
  if (next_level_ <= depths_.size() && index == depths_[next_level_ - 1]) {
    int level =
        static_cast<int>(next_level_++);  // advanced before the call: the hook may
                                          // checkpoint-pause mid-statement
    (*segment_hook_)(level);
  }
  // No member access after the hook returns — see the header comment on AtConsult.
}

bool RecordingPerturber::ForcePreempt(pcr::PreemptPoint /*point*/, pcr::ThreadId /*current*/) {
  AtConsult();
  uint64_t index = preempt_points_seen_++;
  if (decisions_.size() >= kMaxRecordedDecisions) {
    return false;  // stopped recording; must answer the replayer's past-end default
  }
  bool fire = std::binary_search(policy_.change_points.begin(), policy_.change_points.end(),
                                 index);
  if (!fire && policy_.preempt_probability > 0.0) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    fire = coin(rng_) < policy_.preempt_probability;
  }
  Record(fire ? 1 : 0);
  if (log_tracer_ != nullptr && consult_log_.size() < kMaxRecordedDecisions) {
    consult_log_.push_back({log_tracer_->size(), index, 0, kConsultForcePreempt,
                            static_cast<uint8_t>(fire ? 1 : 0)});
  }
  return fire;
}

size_t RecordingPerturber::PickNext(const pcr::ThreadId* /*candidates*/, size_t count) {
  AtConsult();
  if (decisions_.size() >= kMaxRecordedDecisions) {
    return 0;
  }
  size_t choice = 0;
  if (policy_.shuffle_probability > 0.0 && count > 1) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng_) < policy_.shuffle_probability) {
      std::uniform_int_distribution<size_t> pick(0, std::min<size_t>(count, 16) - 1);
      choice = pick(rng_);
    }
  }
  Record(static_cast<Decision>(choice));
  if (log_tracer_ != nullptr && consult_log_.size() < kMaxRecordedDecisions) {
    consult_log_.push_back({log_tracer_->size(), 0, static_cast<uint32_t>(count),
                            kConsultPickNext, static_cast<uint8_t>(choice)});
  }
  return choice;
}

ReplayPerturber::ReplayPerturber(std::vector<Decision> decisions)
    : decisions_(std::move(decisions)) {}

Decision ReplayPerturber::Next() {
  Decision d = cursor_ < decisions_.size() ? decisions_[cursor_] : 0;
  ++cursor_;
  if (consumed_.size() < kMaxRecordedDecisions) {
    consumed_.push_back(d);
  }
  return d;
}

bool ReplayPerturber::ForcePreempt(pcr::PreemptPoint /*point*/, pcr::ThreadId /*current*/) {
  return Next() != 0;
}

size_t ReplayPerturber::PickNext(const pcr::ThreadId* /*candidates*/, size_t count) {
  size_t choice = Next();
  return choice < count ? choice : 0;
}

}  // namespace explore
