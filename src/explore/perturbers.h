// Concrete SchedulePerturbers used by the Explorer.
//
// RecordingPerturber makes randomized decisions and records every one of them, so the schedule
// it produced can be re-executed verbatim by a ReplayPerturber. The randomization combines two
// strategies from the systematic-concurrency-testing literature:
//   * PCT-style change points: a small number of decision indices, chosen up front, at which a
//     forced preemption *will* happen — few, targeted perturbations find ordering bugs with
//     provable probability (cf. "Competitive Parallelism: Getting Your Priorities Right",
//     PAPERS.md, for the priority-perturbation lineage).
//   * i.i.d. noise: every preemption point fires with a small probability, and every ready-queue
//     tie-break picks a random candidate with some probability — a broad fuzz over round-robin
//     accidents.

#ifndef SRC_EXPLORE_PERTURBERS_H_
#define SRC_EXPLORE_PERTURBERS_H_

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "src/explore/repro.h"
#include "src/pcr/perturber.h"

namespace trace {
class Tracer;
}  // namespace trace

namespace explore {

// Derives a decision-stream seed from a group seed plus segment coordinates (splitmix64-style
// finalizer). Used by the explorer's prefix-grouped schedules: every branch/leaf reseeds the
// recorder at a fixed consultation index, so schedules in one group share a decision prefix
// byte-for-byte and diverge only at the reseed boundary.
inline uint64_t MixSeed(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a ^ (0x9e3779b97f4a7c15ull * (b + 1)) ^ (0xbf58476d1ce4e5b9ull * (c + 1));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Decision-stream generator. The recorder reseeds once per explored schedule (and once per
// segment under prefix-grouped exploration), and each stream is only a handful of draws long —
// mt19937_64 pays a ~2.5KB state expansion per seed, which dominated the sweep profile.
// splitmix64 seeds in one store, draws in three multiplies, and passes through
// std::uniform_*_distribution like any URBG. Decision *streams* change with the engine, but
// every decision is recorded, so repro strings and replays are engine-independent.
class SplitMix64 {
 public:
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  SplitMix64() = default;
  explicit SplitMix64(uint64_t s) : state_(s) {}
  void seed(uint64_t s) { state_ = s; }

  result_type operator()() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_ = 0;
};

// Decisions past this count stop being recorded and fall back to defaults (no preempt, FIFO
// tie-break). Replay stays faithful because the replayer answers the same defaults past the end
// of its stream.
inline constexpr size_t kMaxRecordedDecisions = 1 << 20;

struct PerturbPolicy {
  uint64_t seed = 0;                      // perturber RNG seed (distinct from the runtime seed)
  double preempt_probability = 0.0;       // i.i.d. chance a ForcePreempt consultation fires
  double shuffle_probability = 0.0;       // i.i.d. chance a tie-break picks a random candidate
  std::vector<uint64_t> change_points;    // ForcePreempt consultation indices that always fire
};

// One consultation as the recorder saw it, with enough context to re-derive the decision any
// *other* segment seed would have produced at the same point (dpor.h pre-simulates candidate
// leaf seeds over this log without executing them). `event_index` anchors the consultation in
// the trace so divergences can be compared against the independent-tail frontier.
struct ConsultRecord {
  uint64_t event_index = 0;    // tracer size when the consultation was answered
  uint64_t preempt_index = 0;  // ForcePreempt only: global preempt-consultation index
  uint32_t count = 0;          // PickNext only: number of tied candidates offered
  uint8_t kind = 0;            // 0 = ForcePreempt, 1 = PickNext
  uint8_t answer = 0;          // the recorded decision
};
inline constexpr uint8_t kConsultForcePreempt = 0;
inline constexpr uint8_t kConsultPickNext = 1;

class RecordingPerturber : public pcr::SchedulePerturber {
 public:
  explicit RecordingPerturber(const PerturbPolicy& policy);

  bool ForcePreempt(pcr::PreemptPoint point, pcr::ThreadId current) override;
  size_t PickNext(const pcr::ThreadId* candidates, size_t count) override;

  const std::vector<Decision>& decisions() const { return decisions_; }
  // Total ForcePreempt consultations seen — the "horizon" the explorer uses to place the next
  // schedule's change points.
  uint64_t preempt_points_seen() const { return preempt_points_seen_; }
  // Total consultations of either kind — the decision-index space the explorer's segment
  // boundaries (d1/d2) live in.
  uint64_t total_consults() const { return consults_; }

  // Segment boundaries for prefix-grouped exploration: just before answering consultation
  // depths[k] the recorder fires the segment hook with level k+1, exactly once each and in
  // order. The hook typically reseeds the RNG (ReseedSegment) and may pause the simulation to
  // take a checkpoint. Boundaries must be strictly increasing; an empty vector (the default)
  // never fires.
  static constexpr uint64_t kNoBoundary = ~0ull;
  void SetSegmentBoundaries(std::vector<uint64_t> depths) { depths_ = std::move(depths); }
  // The hook is held by pointer to a host-owned std::function: under checkpointed exploration
  // the recorder is copy-assigned (restored) while a suspended fiber frame still sits inside the
  // hook target's operator(), so the target itself must never be copied or destroyed here.
  void set_segment_hook(const std::function<void(int)>* hook) { segment_hook_ = hook; }
  void ReseedSegment(uint64_t seed) { rng_.seed(seed); }

  // Consultation logging for the dpor oracle: with a tracer attached, every recorded decision
  // also appends a ConsultRecord (same cap as the decision stream). The log is plain member
  // state, so checkpoint restores rewind it along with the decisions — a leaf run's log is
  // byte-identical between checkpointed and from-zero execution.
  void EnableConsultLog(const trace::Tracer* tracer) { log_tracer_ = tracer; }
  const std::vector<ConsultRecord>& consult_log() const { return consult_log_; }

 private:
  void Record(Decision d);
  // Must be the first statement of both consultation callbacks, and must touch no members after
  // the hook returns: a checkpoint restore can rewind this object while the frame is suspended
  // inside the hook, and the resumed frame must see post-restore state only.
  void AtConsult();

  PerturbPolicy policy_;
  SplitMix64 rng_;
  uint64_t preempt_points_seen_ = 0;
  uint64_t consults_ = 0;
  std::vector<uint64_t> depths_;  // segment boundaries, strictly increasing
  size_t next_level_ = 1;
  const std::function<void(int)>* segment_hook_ = nullptr;
  const trace::Tracer* log_tracer_ = nullptr;
  std::vector<ConsultRecord> consult_log_;
  std::vector<Decision> decisions_;
};

// Replays a recorded decision stream verbatim; past the end (or on any out-of-range value) it
// answers the defaults, which is exactly what the recorder did past kMaxRecordedDecisions.
class ReplayPerturber : public pcr::SchedulePerturber {
 public:
  explicit ReplayPerturber(std::vector<Decision> decisions);

  bool ForcePreempt(pcr::PreemptPoint point, pcr::ThreadId current) override;
  size_t PickNext(const pcr::ThreadId* candidates, size_t count) override;

  // Decisions actually consumed; on a faithful replay of a terminating run this equals the
  // recorded stream (trailing defaults may be truncated).
  const std::vector<Decision>& consumed() const { return consumed_; }

 private:
  Decision Next();

  std::vector<Decision> decisions_;
  std::vector<Decision> consumed_;
  size_t cursor_ = 0;
};

}  // namespace explore

#endif  // SRC_EXPLORE_PERTURBERS_H_
