// Concrete SchedulePerturbers used by the Explorer.
//
// RecordingPerturber makes randomized decisions and records every one of them, so the schedule
// it produced can be re-executed verbatim by a ReplayPerturber. The randomization combines two
// strategies from the systematic-concurrency-testing literature:
//   * PCT-style change points: a small number of decision indices, chosen up front, at which a
//     forced preemption *will* happen — few, targeted perturbations find ordering bugs with
//     provable probability (cf. "Competitive Parallelism: Getting Your Priorities Right",
//     PAPERS.md, for the priority-perturbation lineage).
//   * i.i.d. noise: every preemption point fires with a small probability, and every ready-queue
//     tie-break picks a random candidate with some probability — a broad fuzz over round-robin
//     accidents.

#ifndef SRC_EXPLORE_PERTURBERS_H_
#define SRC_EXPLORE_PERTURBERS_H_

#include <random>
#include <vector>

#include "src/explore/repro.h"
#include "src/pcr/perturber.h"

namespace explore {

// Decisions past this count stop being recorded and fall back to defaults (no preempt, FIFO
// tie-break). Replay stays faithful because the replayer answers the same defaults past the end
// of its stream.
inline constexpr size_t kMaxRecordedDecisions = 1 << 20;

struct PerturbPolicy {
  uint64_t seed = 0;                      // perturber RNG seed (distinct from the runtime seed)
  double preempt_probability = 0.0;       // i.i.d. chance a ForcePreempt consultation fires
  double shuffle_probability = 0.0;       // i.i.d. chance a tie-break picks a random candidate
  std::vector<uint64_t> change_points;    // ForcePreempt consultation indices that always fire
};

class RecordingPerturber : public pcr::SchedulePerturber {
 public:
  explicit RecordingPerturber(const PerturbPolicy& policy);

  bool ForcePreempt(pcr::PreemptPoint point, pcr::ThreadId current) override;
  size_t PickNext(const pcr::ThreadId* candidates, size_t count) override;

  const std::vector<Decision>& decisions() const { return decisions_; }
  // Total ForcePreempt consultations seen — the "horizon" the explorer uses to place the next
  // schedule's change points.
  uint64_t preempt_points_seen() const { return preempt_points_seen_; }

 private:
  void Record(Decision d);

  PerturbPolicy policy_;
  std::mt19937_64 rng_;
  uint64_t preempt_points_seen_ = 0;
  std::vector<Decision> decisions_;
};

// Replays a recorded decision stream verbatim; past the end (or on any out-of-range value) it
// answers the defaults, which is exactly what the recorder did past kMaxRecordedDecisions.
class ReplayPerturber : public pcr::SchedulePerturber {
 public:
  explicit ReplayPerturber(std::vector<Decision> decisions);

  bool ForcePreempt(pcr::PreemptPoint point, pcr::ThreadId current) override;
  size_t PickNext(const pcr::ThreadId* candidates, size_t count) override;

  // Decisions actually consumed; on a faithful replay of a terminating run this equals the
  // recorded stream (trailing defaults may be truncated).
  const std::vector<Decision>& consumed() const { return consumed_; }

 private:
  Decision Next();

  std::vector<Decision> decisions_;
  std::vector<Decision> consumed_;
  size_t cursor_ = 0;
};

}  // namespace explore

#endif  // SRC_EXPLORE_PERTURBERS_H_
