#include "src/explore/campaign.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <utility>

#include "src/explore/pool.h"
#include "src/pcr/errors.h"
#include "src/trace/json.h"

namespace explore {

namespace {

std::vector<Decision> TrimTrailingDefaults(std::vector<Decision> decisions) {
  while (!decisions.empty() && decisions.back() == 0) {
    decisions.pop_back();
  }
  return decisions;
}

}  // namespace

// ---------------------------------------------------------------- CampaignInput

std::string CampaignInput::Encode() const {
  return EncodeRepro(scenario, runtime_seed, decisions,
                     fault_plan.enabled() ? fault_plan.Encode() : std::string());
}

bool CampaignInput::Decode(const std::string& repro, CampaignInput* out) {
  CampaignInput in;
  std::string fault_text;
  if (!DecodeRepro(repro, &in.scenario, &in.runtime_seed, &in.decisions, &fault_text)) {
    return false;
  }
  try {
    in.fault_plan = fault::Plan::Decode(fault_text);
  } catch (const pcr::UsageError&) {
    return false;
  }
  *out = std::move(in);
  return true;
}

// ---------------------------------------------------------------------- Mutator

Mutator::Mutator(uint64_t seed, size_t max_decisions)
    : rng_(seed), max_decisions_(std::max<size_t>(max_decisions, 16)) {}

CampaignInput Mutator::Mutate(const CampaignInput& parent, const CampaignInput* splice) {
  CampaignInput out = parent;
  auto draw = [this](uint64_t n) -> uint64_t { return n == 0 ? 0 : rng_() % n; };
  // Decision values are biased toward the ones the perturber protocol acts on: 1 fires a
  // forced preempt (or picks ready-queue candidate 1), small values pick nearby candidates,
  // and an occasional wild nibble probes wide tie-breaks.
  auto rand_value = [&]() -> Decision {
    uint64_t r = draw(10);
    if (r < 5) {
      return 1;
    }
    if (r < 8) {
      return static_cast<Decision>(draw(4));
    }
    return static_cast<Decision>(draw(16));
  };

  int ops = 1 + static_cast<int>(draw(3));  // AFL-style stacked havoc, 1-3 ops
  for (int op = 0; op < ops; ++op) {
    switch (draw(7)) {
      case 0:  // flip one decision
        if (!out.decisions.empty()) {
          out.decisions[draw(out.decisions.size())] = rand_value();
        } else {
          out.decisions.push_back(rand_value());
        }
        break;
      case 1: {  // append a tail of fresh decisions
        size_t tail = 1 + draw(48);
        while (tail-- > 0 && out.decisions.size() < max_decisions_) {
          out.decisions.push_back(draw(3) == 0 ? rand_value() : 0);
        }
        break;
      }
      case 2:  // truncate to a prefix
        if (!out.decisions.empty()) {
          out.decisions.resize(draw(out.decisions.size()));
        }
        break;
      case 3:  // splice: parent prefix + partner suffix (same scenario only)
        if (splice != nullptr && splice->scenario == out.scenario &&
            !splice->decisions.empty()) {
          size_t cut = draw(out.decisions.size() + 1);
          size_t from = draw(splice->decisions.size());
          out.decisions.resize(cut);
          for (size_t i = from;
               i < splice->decisions.size() && out.decisions.size() < max_decisions_; ++i) {
            out.decisions.push_back(splice->decisions[i]);
          }
        }
        break;
      case 4:  // re-sweep the runtime seed
        out.runtime_seed = rng_() | 1;
        break;
      case 5:  // perturb the fault plan
        out.fault_plan = fault::MutatePlan(out.fault_plan, rng_);
        break;
      default:  // zero one non-default decision (gentle shrink pressure)
        if (!out.decisions.empty()) {
          out.decisions[draw(out.decisions.size())] = 0;
        }
        break;
    }
  }
  out.decisions = TrimTrailingDefaults(std::move(out.decisions));
  if (!out.fault_plan.enabled()) {
    // A disarmed plan is inert whatever its seed; canonicalize so Encode/Decode round-trips.
    out.fault_plan = fault::Plan();
  }
  return out;
}

// --------------------------------------------------------------------- Campaign

Campaign::Campaign(std::vector<BugScenario> scenarios, CampaignOptions options)
    : options_(std::move(options)),
      corpus_(options_.corpus_dir, options_.read_only),
      master_(options_.seed) {
  slots_.reserve(scenarios.size());
  for (BugScenario& scenario : scenarios) {
    ScenarioSlot slot;
    slot.scenario = std::move(scenario);
    ExploreOptions opts = slot.scenario.options;
    opts.scenario_name = slot.scenario.name;
    opts.collect_coverage = true;
    opts.coverage_stride = options_.coverage_stride;
    opts.coverage_salt = Corpus::ContentHash(slot.scenario.name);
    slot.explorer = std::make_unique<Explorer>(opts);
    slots_.push_back(std::move(slot));
  }
}

Campaign::ScenarioSlot* Campaign::FindSlot(const std::string& name) {
  for (ScenarioSlot& slot : slots_) {
    if (slot.scenario.name == name) {
      return &slot;
    }
  }
  return nullptr;
}

bool Campaign::MergeCoverage(const ScheduleOutcome& outcome) {
  bool any_new = false;
  for (uint64_t key : outcome.coverage) {
    any_new = coverage_.insert(key).second || any_new;
  }
  status_.coverage_points = coverage_.size();
  return any_new;
}

void Campaign::NoteFailure(ScenarioSlot& slot, const ScheduleOutcome& outcome) {
  // Same identity SameFailure uses: the first detector finding when there is one, otherwise
  // the first assertion message (stable text per Check call site).
  std::string key = slot.scenario.name + "|";
  if (!outcome.findings.empty()) {
    const Finding& f = outcome.findings.front();
    key += std::string(FindingKindName(f.kind)) + "@" + std::to_string(f.object);
  } else if (!outcome.failures.empty()) {
    key += outcome.failures.front();
  } else {
    key += "unknown";
  }
  if (!failure_keys_.insert(key).second) {
    return;
  }
  status_.distinct_failures = failure_keys_.size();
  // A new bug: shrink it with the standard Minimize path and pin it under crashes/. The
  // minimized input's own coverage joins the map so a later replay-only pass over this corpus
  // reaches the exact same coverage count (campaign_test relies on that fixed point).
  ScheduleOutcome minimized = slot.explorer->Minimize(outcome, slot.scenario.body);
  if (minimized.failed) {
    MergeCoverage(minimized);
  }
  corpus_.AddCrash(minimized.failed ? minimized.repro : outcome.repro);
  status_.crash_entries = corpus_.crashes().size();
}

void Campaign::RunBatch(const std::vector<std::string>& repros, bool admit,
                        bool validate_replay) {
  struct Task {
    const std::string* repro = nullptr;
    ScenarioSlot* slot = nullptr;
  };
  std::vector<Task> tasks;
  tasks.reserve(repros.size());
  for (const std::string& repro : repros) {
    CampaignInput input;
    if (!CampaignInput::Decode(repro, &input)) {
      status_.errors.push_back("malformed corpus entry: " + repro);
      continue;
    }
    ScenarioSlot* slot = FindSlot(input.scenario);
    if (slot == nullptr) {
      status_.errors.push_back("corpus entry names unknown scenario '" + input.scenario +
                               "': " + repro);
      continue;
    }
    tasks.push_back(Task{&repro, slot});
  }

  std::vector<ScheduleOutcome> outcomes(tasks.size());
  std::vector<std::string> run_errors(tasks.size());
  int workers = options_.workers > 0 ? options_.workers : WorkerPool::HardwareWorkers();
  WorkerPool pool(workers);
  pool.Run(tasks.size(), [&](size_t k) {
    try {
      outcomes[k] = tasks[k].slot->explorer->Replay(*tasks[k].repro, tasks[k].slot->scenario.body);
      if (validate_replay) {
        ScheduleOutcome again =
            tasks[k].slot->explorer->Replay(*tasks[k].repro, tasks[k].slot->scenario.body);
        if (again.trace_hash != outcomes[k].trace_hash) {
          run_errors[k] = "nondeterministic replay of " + *tasks[k].repro;
        }
      }
    } catch (const std::exception& e) {
      run_errors[k] = std::string("replay threw: ") + e.what() + " for " + *tasks[k].repro;
    }
  });

  // Serial merge in task-index order: this is the only place the corpus and coverage map
  // mutate, so evolution cannot depend on which worker ran what when.
  for (size_t k = 0; k < tasks.size(); ++k) {
    if (!run_errors[k].empty()) {
      status_.errors.push_back(run_errors[k]);
      continue;
    }
    ++status_.inputs_run;
    bool new_coverage = MergeCoverage(outcomes[k]);
    if (admit && new_coverage && corpus_.entries().size() < options_.max_corpus_entries) {
      corpus_.Add(outcomes[k].repro);
      status_.corpus_entries = corpus_.entries().size();
    }
    if (outcomes[k].failed) {
      NoteFailure(*tasks[k].slot, outcomes[k]);
    }
  }
  status_.corpus_entries = corpus_.entries().size();
  status_.crash_entries = corpus_.crashes().size();
}

const CampaignStatus& Campaign::Run() {
  const auto start = std::chrono::steady_clock::now();
  status_ = CampaignStatus{};
  coverage_.clear();
  failure_keys_.clear();

  std::vector<std::string> load_errors;
  if (!corpus_.Load(&load_errors)) {
    status_.errors = std::move(load_errors);
    MaybeWriteStatus(true);
    return status_;
  }
  // Unreadable/malformed individual entries are reported but do not kill the campaign.
  status_.errors.insert(status_.errors.end(), load_errors.begin(), load_errors.end());
  std::vector<std::string> loaded_entries = corpus_.entries();
  std::vector<std::string> loaded_crashes = corpus_.crashes();

  // Phase A: every scenario's unperturbed baseline. From an empty corpus this is what seeds
  // the first coverage and the first corpus entries.
  std::vector<std::string> baselines;
  for (ScenarioSlot& slot : slots_) {
    CampaignInput input;
    input.scenario = slot.scenario.name;
    input.runtime_seed = slot.scenario.options.base_config.seed;
    input.fault_plan = slot.scenario.options.fault_plan;
    baselines.push_back(input.Encode());
  }
  RunBatch(baselines, /*admit=*/true, /*validate_replay=*/false);

  // Phase B: replay the loaded corpus, twice per entry (determinism gate), and require every
  // crashes/ entry to still fail — the committed-corpus CI contract.
  RunBatch(loaded_entries, /*admit=*/true, /*validate_replay=*/true);
  size_t failures_before = failure_keys_.size();
  (void)failures_before;
  for (const std::string& crash : loaded_crashes) {
    CampaignInput input;
    if (!CampaignInput::Decode(crash, &input)) {
      status_.errors.push_back("malformed crash entry: " + crash);
      continue;
    }
    ScenarioSlot* slot = FindSlot(input.scenario);
    if (slot == nullptr) {
      status_.errors.push_back("crash entry names unknown scenario '" + input.scenario +
                               "': " + crash);
      continue;
    }
    ScheduleOutcome outcome = slot->explorer->Replay(crash, slot->scenario.body);
    ++status_.inputs_run;
    MergeCoverage(outcome);
    if (!outcome.failed) {
      status_.errors.push_back("crash entry no longer fails: " + crash);
      continue;
    }
    // Register the bug identity without re-minimizing (the entry is already minimal).
    std::string key = slot->scenario.name + "|";
    if (!outcome.findings.empty()) {
      const Finding& f = outcome.findings.front();
      key += std::string(FindingKindName(f.kind)) + "@" + std::to_string(f.object);
    } else {
      key += outcome.failures.front();
    }
    failure_keys_.insert(key);
    status_.distinct_failures = failure_keys_.size();
  }
  MaybeWriteStatus(true);

  // Phase C: coverage-guided mutation rounds.
  Mutator mutator(options_.seed ^ 0x9e3779b97f4a7c15ull);
  for (int round = 0; round < options_.rounds; ++round) {
    const std::vector<std::string>& parents = corpus_.entries();
    if (parents.empty()) {
      status_.errors.push_back("campaign has no runnable corpus entries");
      break;
    }
    std::vector<std::string> batch;
    batch.reserve(static_cast<size_t>(options_.batch));
    for (int b = 0; b < options_.batch; ++b) {
      CampaignInput parent;
      if (!CampaignInput::Decode(parents[master_() % parents.size()], &parent)) {
        continue;  // cannot happen: admission re-encodes canonically
      }
      CampaignInput partner;
      const CampaignInput* splice = nullptr;
      if (parents.size() > 1 && master_() % 2 == 0 &&
          CampaignInput::Decode(parents[master_() % parents.size()], &partner)) {
        splice = &partner;
      }
      batch.push_back(mutator.Mutate(parent, splice).Encode());
    }
    RunBatch(batch, /*admit=*/true, /*validate_replay=*/false);
    ++status_.rounds_completed;
    MaybeWriteStatus(false);
  }

  status_.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (status_.wall_sec > 0) {
    status_.inputs_per_sec = static_cast<double>(status_.inputs_run) / status_.wall_sec;
  }
  MaybeWriteStatus(true);
  return status_;
}

void Campaign::MaybeWriteStatus(bool force) {
  status_.failure_keys.assign(failure_keys_.begin(), failure_keys_.end());
  status_.checkpoint_saves = 0;
  status_.checkpoint_resumes = 0;
  status_.checkpoint_bytes = 0;
  status_.pruned_schedules = 0;
  status_.dpor_pruned = 0;
  status_.drain_spliced = 0;
  for (const ScenarioSlot& slot : slots_) {
    status_.checkpoint_saves += slot.explorer->checkpoint_saves();
    status_.checkpoint_resumes += slot.explorer->checkpoint_resumes();
    status_.checkpoint_bytes += slot.explorer->checkpoint_bytes();
    status_.pruned_schedules += slot.explorer->pruned_schedules();
    status_.dpor_pruned += slot.explorer->dpor_pruned();
    status_.drain_spliced += slot.explorer->drain_spliced();
  }
  if (options_.status_json_path.empty()) {
    return;
  }
  if (!force && (options_.status_every <= 0 ||
                 status_.rounds_completed % options_.status_every != 0)) {
    return;
  }
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const ScenarioSlot& slot : slots_) {
    names.push_back(slot.scenario.name);
  }
  if (!WriteStatusJson(options_.status_json_path, status_, names)) {
    // Recorded once; a broken status path should fail the campaign loudly, not spam.
    std::string err = "cannot write status json: " + options_.status_json_path;
    if (std::find(status_.errors.begin(), status_.errors.end(), err) == status_.errors.end()) {
      status_.errors.push_back(err);
    }
  }
}

bool Campaign::WriteStatusJson(const std::string& path, const CampaignStatus& status,
                               const std::vector<std::string>& scenario_names) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  auto write_list = [&out](const std::vector<std::string>& items) {
    out << "[";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      trace::WriteJsonString(out, items[i]);
    }
    out << "]";
  };
  out << "{\n";
  out << "  \"rounds\": " << status.rounds_completed << ",\n";
  out << "  \"inputs_run\": " << status.inputs_run << ",\n";
  out << "  \"corpus_entries\": " << status.corpus_entries << ",\n";
  out << "  \"crash_entries\": " << status.crash_entries << ",\n";
  out << "  \"coverage_points\": " << status.coverage_points << ",\n";
  out << "  \"distinct_failures\": " << status.distinct_failures << ",\n";
  out << "  \"scenarios\": ";
  write_list(scenario_names);
  out << ",\n  \"failures\": ";
  write_list(status.failure_keys);
  out << ",\n  \"errors\": ";
  write_list(status.errors);
  out << ",\n  \"checkpoint_saves\": " << status.checkpoint_saves << ",\n";
  out << "  \"checkpoint_resumes\": " << status.checkpoint_resumes << ",\n";
  out << "  \"checkpoint_bytes\": " << status.checkpoint_bytes << ",\n";
  out << "  \"pruned_schedules\": " << status.pruned_schedules << ",\n";
  out << "  \"dpor_pruned\": " << status.dpor_pruned << ",\n";
  out << "  \"drain_spliced\": " << status.drain_spliced;
  char rate[64];
  std::snprintf(rate, sizeof(rate), "%.3f", status.wall_sec);
  out << ",\n  \"wall_sec\": " << rate << ",\n";
  std::snprintf(rate, sizeof(rate), "%.1f", status.inputs_per_sec);
  out << "  \"inputs_per_sec\": " << rate << "\n";
  out << "}\n";
  return out.good();
}

}  // namespace explore
