#include "src/explore/dpor.h"

#include <algorithm>
#include <random>
#include <unordered_map>
#include <utility>

#include "src/trace/event.h"
#include "src/trace/tracer.h"

namespace explore {

namespace {

// How an event participates in the commutativity relation.
enum class DepClass : uint8_t {
  kNeutral,   // thread-local or scheduling-only: never conflicts
  kKeyed,     // conflicts iff another thread touches the same (type-class, object) key
  kConflict,  // order-sensitive outright: ends the independent tail
};

DepClass Classify(trace::EventType type) {
  using trace::EventType;
  switch (type) {
    // Pure scheduling / thread-lifecycle records. Their relative order across threads is
    // either forced by synchronization (join follows exit) or observationally irrelevant
    // (which of two dying threads is reaped first); neither feeds the detector's lockset or
    // notify bookkeeping.
    case EventType::kThreadStart:
    case EventType::kThreadExit:
    case EventType::kThreadJoin:
    case EventType::kThreadDetach:
    case EventType::kSwitch:
    case EventType::kPreempt:
    case EventType::kYield:
    case EventType::kYieldButNotToMe:
    case EventType::kDirectedYield:
    case EventType::kSetPriority:
    case EventType::kForcedPreempt:
    case EventType::kRngSeed:
      return DepClass::kNeutral;
    // Object-keyed operations: commute exactly when their objects are disjoint.
    case EventType::kMlEnter:
    case EventType::kMlContend:
    case EventType::kMlExit:
    case EventType::kSharedRead:
    case EventType::kSharedWrite:
    case EventType::kUser:
      return DepClass::kKeyed;
    // Everything else is order-sensitive: condition-variable traffic drives the lost-notify /
    // timeout detectors, timers and sleeps tie behavior to virtual time, forks add threads
    // whose steps the witness tail cannot vouch for, faults and watchdog reports are
    // inherently schedule-coupled. New event kinds default here — conservative by design.
    default:
      return DepClass::kConflict;
  }
}

uint64_t DepKey(const trace::Event& e) {
  // Type-class tag in the top bits so a monitor and a shared cell with equal ids stay
  // distinct keys. Object ids are dense small integers, nowhere near 2^56.
  uint64_t tag;
  switch (e.type) {
    case trace::EventType::kSharedRead:
    case trace::EventType::kSharedWrite:
      tag = 1;
      break;
    case trace::EventType::kUser:
      tag = 2;
      break;
    default:
      tag = 0;  // monitor operations
      break;
  }
  return (tag << 56) ^ e.object;
}

}  // namespace

uint64_t IndependentTailStart(const trace::Tracer& tracer) {
  // Forward pass: the tail must contain no conflicting pair, so for every pair (p, i) of
  // same-key touches by different threads (and every outright-conflict event i) the tail can
  // start no earlier than p + 1 (respectively i + 1). Tracking only the *latest* prior touch
  // per key suffices: older touches give strictly weaker constraints.
  std::unordered_map<uint64_t, std::pair<uint64_t, trace::ThreadId>> last_touch;
  uint64_t start = 0;
  uint64_t index = tracer.first_retained();
  for (const trace::Event& e : tracer.view()) {
    switch (Classify(e.type)) {
      case DepClass::kNeutral:
        break;
      case DepClass::kConflict:
        start = index + 1;
        break;
      case DepClass::kKeyed: {
        auto [it, inserted] = last_touch.try_emplace(DepKey(e), index, e.thread);
        if (!inserted) {
          if (it->second.second != e.thread) {
            start = std::max(start, it->second.first + 1);
          }
          it->second = {index, e.thread};
        }
        break;
      }
    }
    ++index;
  }
  return start;
}

LeafVerdict ClassifyLeaf(uint64_t leaf_seed, const PerturbPolicy& policy,
                         const std::vector<uint64_t>& sorted_change_points,
                         const LeafWitness& witness) {
  SplitMix64 rng(leaf_seed);
  for (size_t i = 0; i < witness.suffix_len; ++i) {
    const ConsultRecord& c = witness.suffix[i];
    uint8_t answer;
    if (c.kind == kConsultForcePreempt) {
      bool fire = std::binary_search(sorted_change_points.begin(), sorted_change_points.end(),
                                     c.preempt_index);
      if (!fire && policy.preempt_probability > 0.0) {
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        fire = coin(rng) < policy.preempt_probability;
      }
      answer = fire ? 1 : 0;
    } else {
      size_t choice = 0;
      if (policy.shuffle_probability > 0.0 && c.count > 1) {
        std::uniform_real_distribution<double> coin(0.0, 1.0);
        if (coin(rng) < policy.shuffle_probability) {
          std::uniform_int_distribution<size_t> pick(0, std::min<size_t>(c.count, 16) - 1);
          choice = pick(rng);
        }
      }
      answer = static_cast<uint8_t>(choice);
    }
    if (answer != c.answer) {
      // First divergence. Beyond it the simulation is meaningless (the candidate's own
      // consultation sequence departs from the log), but the classification only needs this
      // point: in the independent tail every continuation is findings-equivalent.
      return c.event_index >= witness.independent_tail_event ? LeafVerdict::kTailSplice
                                                             : LeafVerdict::kExecute;
    }
  }
  return LeafVerdict::kIdenticalPrune;
}

}  // namespace explore
