// Coverage-guided fault x schedule fuzzing campaign over the canned bug scenarios.
//
// The explorer (explorer.h) searches schedule space blindly: every Explore call draws fresh
// seeds and keeps nothing but failures. A Campaign closes the loop with a feedback signal and
// a corpus, turning the same machinery into a bug-mining service:
//
//   coverage  = prefix trace hashes (hash.h — partial executions count)
//             ∪ interleaving/lockset edges (detector.h CollectTraceCoverage)
//             ∪ fault-firing and watchdog-report keys (src/fault/watchdog.cc kinds ride in
//               kWatchdogReport trace events)
//
//   corpus    = inputs that discovered new coverage, one 5-field repro string per file
//               (corpus.h); failing inputs are minimized with Explorer::Minimize and kept
//               under crashes/.
//
//   mutation  = a seeded, wall-clock-free Mutator that splices decision prefixes between
//               corpus entries, flips/extends/truncates decisions, re-sweeps runtime seeds,
//               and perturbs fault plans via fault::MutatePlan.
//
// Rounds fan candidate executions across the explorer's WorkerPool, but every decision that
// shapes the corpus — candidate generation, coverage union, corpus admission, crash dedup,
// minimization — happens serially in candidate-index order, so corpus evolution is
// byte-identical at any worker count (the same contract Explorer::Explore keeps).
//
// CLI: pcrcheck --campaign=DIR --campaign-rounds=N --campaign-status-json=FILE. docs/FUZZING.md
// is the field guide.

#ifndef SRC_EXPLORE_CAMPAIGN_H_
#define SRC_EXPLORE_CAMPAIGN_H_

#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/explore/corpus.h"
#include "src/explore/explorer.h"
#include "src/explore/scenarios.h"
#include "src/fault/fault.h"

namespace explore {

// One fuzzing input, the decoded form of a 5-field repro string: which scenario to run, the
// runtime seed, the schedule-decision prefix (replayed verbatim, defaults past the end), and
// the fault plan.
struct CampaignInput {
  std::string scenario;
  uint64_t runtime_seed = 1;
  std::vector<Decision> decisions;
  fault::Plan fault_plan;

  std::string Encode() const;
  // Strict decode: false on malformed repro or fault-plan text (never throws).
  static bool Decode(const std::string& repro, CampaignInput* out);

  bool operator==(const CampaignInput&) const = default;
};

// Deterministic input mutator. Seeded once; every offspring is a pure function of the RNG
// stream, so campaigns are replayable and worker-count independent. `splice` (optional) must
// be from the same scenario: one mutation op grafts its decision suffix onto the parent's
// prefix.
class Mutator {
 public:
  explicit Mutator(uint64_t seed, size_t max_decisions = 2048);

  CampaignInput Mutate(const CampaignInput& parent, const CampaignInput* splice = nullptr);

 private:
  std::mt19937_64 rng_;
  size_t max_decisions_;
};

struct CampaignOptions {
  std::string corpus_dir;        // "" = in-memory corpus (tests)
  bool read_only = false;        // replay without writing (CI committed-corpus gate)
  int rounds = 100;              // mutation rounds; 0 = replay-only
  int batch = 16;                // candidates per round
  uint64_t seed = 1;             // master seed for parent picks + mutations
  int workers = 0;               // WorkerPool size (0 = hardware concurrency)
  std::string status_json_path;  // "" = no status file
  int status_every = 10;         // rewrite the status JSON every N rounds (and at the end)
  size_t coverage_stride = 64;   // prefix-hash stride fed to the Explorer
  size_t max_corpus_entries = 4096;  // admission stops past this (coverage still counted)
};

// Rolling campaign state; also the schema of the status JSON (WriteStatusJson). Everything
// except wall_sec / inputs_per_sec (informational, wall-clock) is deterministic.
struct CampaignStatus {
  int rounds_completed = 0;
  int64_t inputs_run = 0;
  size_t corpus_entries = 0;
  size_t crash_entries = 0;
  size_t coverage_points = 0;
  size_t distinct_failures = 0;
  std::vector<std::string> failure_keys;  // sorted "scenario|bug identity" strings
  std::vector<std::string> errors;        // validation problems; non-empty fails the campaign
  // Checkpoint-and-branch counters summed across the campaign's per-scenario explorers
  // (explore.checkpoint.* / explore.pruned in the metrics registry). Zero when every input ran
  // as a single-schedule replay — today's campaign paths — or with checkpointing off.
  int64_t checkpoint_saves = 0;
  int64_t checkpoint_resumes = 0;
  int64_t checkpoint_bytes = 0;
  int64_t pruned_schedules = 0;
  int64_t dpor_pruned = 0;
  int64_t drain_spliced = 0;
  double wall_sec = 0;
  double inputs_per_sec = 0;

  bool ok() const { return errors.empty(); }
};

class Campaign {
 public:
  // `scenarios` are copied; each gets a coverage-collecting Explorer built from its tuned
  // ExploreOptions (budget is ignored — the campaign replays single schedules).
  Campaign(std::vector<BugScenario> scenarios, CampaignOptions options);

  // The whole loop: load corpus -> replay baselines + corpus (validating determinism and that
  // crash entries still fail) -> `rounds` mutation rounds -> final status. Returns the final
  // status; status().ok() distinguishes "ran clean" from "validation errors".
  const CampaignStatus& Run();

  const CampaignStatus& status() const { return status_; }
  const Corpus& corpus() const { return corpus_; }
  const CampaignOptions& options() const { return options_; }

  // Serializes `status` as the documented JSON object. Returns false when the file cannot be
  // written.
  static bool WriteStatusJson(const std::string& path, const CampaignStatus& status,
                              const std::vector<std::string>& scenario_names);

 private:
  struct ScenarioSlot {
    BugScenario scenario;
    std::unique_ptr<Explorer> explorer;
  };

  ScenarioSlot* FindSlot(const std::string& name);
  // Runs `repros` across the pool and merges serially in index order: coverage union, corpus
  // admission (when `admit`), crash handling. Appends per-input validation errors.
  void RunBatch(const std::vector<std::string>& repros, bool admit, bool validate_replay);
  // True when `outcome` contributed at least one unseen coverage key (and records them all).
  bool MergeCoverage(const ScheduleOutcome& outcome);
  void NoteFailure(ScenarioSlot& slot, const ScheduleOutcome& outcome);
  void MaybeWriteStatus(bool force);

  std::vector<ScenarioSlot> slots_;
  CampaignOptions options_;
  Corpus corpus_;
  CampaignStatus status_;
  std::mt19937_64 master_;
  std::unordered_set<uint64_t> coverage_;
  std::set<std::string> failure_keys_;
};

}  // namespace explore

#endif  // SRC_EXPLORE_CAMPAIGN_H_
