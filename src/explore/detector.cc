#include "src/explore/detector.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace explore {

namespace {

using trace::Event;
using trace::EventType;
using trace::ObjectId;
using trace::ThreadId;
using trace::Usec;

// Dense vector clock: index = thread id, value = logical time, 0 = never ticked. Thread ids
// are small consecutive integers in these traces, so a flat vector turns every clock
// operation (tick, join, compare) into plain indexed loads — the detector runs once per
// explored schedule, which makes this the hottest analysis loop in the repo.
using VectorClock = std::vector<uint64_t>;

void Join(VectorClock* into, const VectorClock& from) {
  if (from.size() > into->size()) {
    into->resize(from.size(), 0);
  }
  for (size_t i = 0; i < from.size(); ++i) {
    (*into)[i] = std::max((*into)[i], from[i]);
  }
}

// True when the access stamped with `vc_a` by `thread_a` happens-before the later access
// stamped with `vc_b`. A zero own-clock means thread_a never ticked — degenerate, treat as
// ordered (entries are >= 1 from their first tick, so 0 is exactly "absent").
bool HappensBefore(ThreadId thread_a, const VectorClock& vc_a, const VectorClock& vc_b) {
  uint64_t own = thread_a < vc_a.size() ? vc_a[thread_a] : 0;
  if (own == 0) {
    return true;
  }
  uint64_t seen = thread_a < vc_b.size() ? vc_b[thread_a] : 0;
  return seen >= own;
}

using Lockset = std::vector<ObjectId>;  // sorted

bool Disjoint(const Lockset& a, const Lockset& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) {
      return false;
    }
    (*ia < *ib) ? ++ia : ++ib;
  }
  return true;
}

struct Access {
  ThreadId thread;
  bool is_write;
  Lockset locks;
  VectorClock vc;
  Usec time;
};

struct CellState {
  std::vector<Access> accesses;  // capped, deduped by (thread, is_write, lockset)
  bool reported = false;
};

struct CvState {
  int64_t waits_started = 0;
  int64_t timeouts = 0;
  int64_t notified = 0;
  int64_t notifies = 0;       // NOTIFY ops issued
  int64_t notifies_woke = 0;  // NOTIFY ops that woke someone
  Usec last_time = 0;
};

struct BroadcastGroup {
  ObjectId cv = 0;
  Usec time = 0;
  uint64_t woken = 0;
  uint64_t unassigned = 0;  // kCvNotified events still to attribute to this broadcast
  uint64_t left_without_rewait = 0;
};

// What a broadcast-woken thread is doing between its kCvNotified and the verdict. Stored in a
// tid-indexed vector; `active` distinguishes a live entry from the default.
struct WokenState {
  size_t group = 0;          // index into groups
  ObjectId cv = 0;
  ObjectId home_monitor = 0;  // first monitor re-entered after the wakeup; 0 until seen
  bool active = false;
};

}  // namespace

std::string_view FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kUnprotectedSharedAccess:
      return "unprotected-shared-access";
    case FindingKind::kWaitNotInLoop:
      return "wait-not-in-loop";
    case FindingKind::kTimeoutDrivenCv:
      return "timeout-driven-cv";
    case FindingKind::kNotifyWithoutWaiter:
      return "notify-without-waiter";
  }
  return "unknown";
}

// The complete fold state of the analysis. Everything is a value type, so the compiler-generated
// copy is exactly the deep copy TraceAnalyzer's copy constructor promises.
struct TraceAnalyzer::State {
  DetectorOptions options;

  std::vector<VectorClock> clocks;  // tid-indexed
  std::vector<Lockset> held;        // tid-indexed
  std::unordered_map<ObjectId, VectorClock> monitor_release;
  std::unordered_map<ObjectId, VectorClock> cv_signal;
  std::unordered_map<ObjectId, CellState> cells;
  std::map<ObjectId, CvState> cvs;
  std::vector<BroadcastGroup> groups;
  std::unordered_map<ObjectId, std::vector<size_t>> pending_groups;  // cv -> group indices
  std::vector<WokenState> woken;  // tid-indexed

  VectorClock& clock_of(ThreadId tid) {
    if (clocks.size() <= tid) {
      clocks.resize(static_cast<size_t>(tid) + 1);
    }
    return clocks[tid];
  }
  Lockset& held_of(ThreadId tid) {
    if (held.size() <= tid) {
      held.resize(static_cast<size_t>(tid) + 1);
    }
    return held[tid];
  }
  WokenState& woken_of(ThreadId tid) {
    if (woken.size() <= tid) {
      woken.resize(static_cast<size_t>(tid) + 1);
    }
    return woken[tid];
  }
  // A live entry for tid, or nullptr. Never grows the vector: absent means inactive.
  WokenState* woken_find(ThreadId tid) {
    return tid < woken.size() && woken[tid].active ? &woken[tid] : nullptr;
  }
  void tick(ThreadId tid) {
    VectorClock& c = clock_of(tid);
    if (c.size() <= tid) {
      c.resize(static_cast<size_t>(tid) + 1, 0);
    }
    ++c[tid];
  }
};

TraceAnalyzer::TraceAnalyzer(const DetectorOptions& options) : state_(new State{}) {
  state_->options = options;
}
TraceAnalyzer::TraceAnalyzer(const TraceAnalyzer& other) : state_(new State(*other.state_)) {}
TraceAnalyzer& TraceAnalyzer::operator=(const TraceAnalyzer& other) {
  if (this != &other) {
    *state_ = *other.state_;
  }
  return *this;
}
TraceAnalyzer::TraceAnalyzer(TraceAnalyzer&&) noexcept = default;
TraceAnalyzer& TraceAnalyzer::operator=(TraceAnalyzer&&) noexcept = default;
TraceAnalyzer::~TraceAnalyzer() = default;

void TraceAnalyzer::Feed(const Event& e) {
  State& s = *state_;
  ThreadId t = e.thread;
  switch (e.type) {
    case EventType::kThreadFork: {
      // The child starts with everything the parent has done so far.
      auto child = static_cast<ThreadId>(e.object);
      s.tick(t);
      {
        VectorClock parent = s.clock_of(t);  // copy first: clock_of(child) may reallocate
        s.clock_of(child) = std::move(parent);
      }
      s.tick(child);
      break;
    }
    case EventType::kThreadJoin: {
      // Everything the joined thread did is now ordered before the joiner's future.
      auto o = static_cast<ThreadId>(e.object);
      s.clock_of(std::max(t, o));  // one growth, so both references below stay valid
      Join(&s.clocks[t], s.clocks[o]);
      s.tick(t);
      break;
    }
    case EventType::kMlEnter: {
      Lockset& locks = s.held_of(t);
      auto it = std::lower_bound(locks.begin(), locks.end(), e.object);
      if (it == locks.end() || *it != e.object) {
        locks.insert(it, e.object);
      }
      auto release = s.monitor_release.find(e.object);
      if (release != s.monitor_release.end()) {
        Join(&s.clock_of(t), release->second);
      }
      s.tick(t);
      if (WokenState* w = s.woken_find(t); w != nullptr && w->home_monitor == 0) {
        w->home_monitor = e.object;  // the re-acquire after a CV wakeup
      }
      break;
    }
    case EventType::kMlExit: {
      Lockset& locks = s.held_of(t);
      auto it = std::lower_bound(locks.begin(), locks.end(), e.object);
      if (it != locks.end() && *it == e.object) {
        locks.erase(it);
      }
      s.tick(t);
      s.monitor_release[e.object] = s.clocks[t];
      if (WokenState* w = s.woken_find(t); w != nullptr && w->home_monitor == e.object) {
        // Left the monitor without re-WAITing: proceeded on a once-checked predicate.
        ++s.groups[w->group].left_without_rewait;
        w->active = false;
      }
      break;
    }
    case EventType::kCvWait:
      ++s.cvs[e.object].waits_started;
      s.cvs[e.object].last_time = e.time_us;
      s.tick(t);
      if (WokenState* w = s.woken_find(t); w != nullptr && w->cv == e.object) {
        w->active = false;  // re-checked and re-waited: the loop convention in action
      }
      break;
    case EventType::kCvTimeout:
      ++s.cvs[e.object].timeouts;
      s.cvs[e.object].last_time = e.time_us;
      s.tick(t);
      break;
    case EventType::kCvNotified: {
      CvState& cv = s.cvs[e.object];
      ++cv.notified;
      cv.last_time = e.time_us;
      auto signal = s.cv_signal.find(e.object);
      if (signal != s.cv_signal.end()) {
        Join(&s.clock_of(t), signal->second);  // the notifier's past is ordered before us
      }
      s.tick(t);
      auto pending = s.pending_groups.find(e.object);
      if (pending != s.pending_groups.end() && !pending->second.empty()) {
        size_t g = pending->second.front();
        if (--s.groups[g].unassigned == 0) {
          pending->second.erase(pending->second.begin());
        }
        s.woken_of(t) = WokenState{g, e.object, 0, true};
      }
      break;
    }
    case EventType::kCvNotify: {
      CvState& cv = s.cvs[e.object];
      ++cv.notifies;
      if (e.arg > 0) {
        ++cv.notifies_woke;
      }
      cv.last_time = e.time_us;
      s.tick(t);
      s.cv_signal[e.object] = s.clocks[t];
      break;
    }
    case EventType::kCvBroadcast: {
      CvState& cv = s.cvs[e.object];
      ++cv.notifies;
      if (e.arg > 0) {
        ++cv.notifies_woke;
      }
      cv.last_time = e.time_us;
      s.tick(t);
      s.cv_signal[e.object] = s.clocks[t];
      if (e.arg >= 2) {
        s.groups.push_back(BroadcastGroup{e.object, e.time_us, e.arg, e.arg, 0});
        s.pending_groups[e.object].push_back(s.groups.size() - 1);
      }
      break;
    }
    case EventType::kSharedRead:
    case EventType::kSharedWrite: {
      if (t == 0) {
        break;  // host-context setup accesses are not schedulable
      }
      bool is_write = e.type == EventType::kSharedWrite;
      s.tick(t);
      CellState& cell = s.cells[e.object];
      const Lockset& locks = s.held_of(t);
      // Dedup by (thread, kind, lockset), keeping the first and the latest access per key:
      // the first catches races against earlier accesses, the latest keeps the clock fresh
      // for races against later ones. Without this, spin-loop reads would blow up the pass.
      Access* latest = nullptr;
      int matches = 0;
      for (auto it = cell.accesses.rbegin(); it != cell.accesses.rend(); ++it) {
        if (it->thread == t && it->is_write == is_write && it->locks == locks) {
          if (latest == nullptr) {
            latest = &*it;
          }
          ++matches;
        }
      }
      if (matches >= 2) {
        *latest = Access{t, is_write, locks, s.clocks[t], e.time_us};  // refresh latest slot
      } else if (cell.accesses.size() < s.options.max_access_summaries) {
        cell.accesses.push_back(Access{t, is_write, locks, s.clocks[t], e.time_us});
      }
      break;
    }
    default:
      if (t != 0) {
        s.tick(t);
      }
      break;
  }
}

std::vector<Finding> TraceAnalyzer::Finish() {
  State& s = *state_;
  std::vector<Finding> findings;

  // Race check: any unordered, lock-disjoint, read-write or write-write pair per cell.
  for (auto& [cell_id, cell] : s.cells) {
    for (size_t i = 0; i < cell.accesses.size() && !cell.reported; ++i) {
      for (size_t j = i + 1; j < cell.accesses.size(); ++j) {
        const Access& a = cell.accesses[i];
        const Access& b = cell.accesses[j];
        if (a.thread == b.thread || (!a.is_write && !b.is_write) || !Disjoint(a.locks, b.locks)) {
          continue;
        }
        if (HappensBefore(a.thread, a.vc, b.vc) || HappensBefore(b.thread, b.vc, a.vc)) {
          continue;
        }
        std::ostringstream detail;
        detail << "cell " << cell_id << ": " << (a.is_write ? "write" : "read") << " by thread "
               << a.thread << " at " << a.time << "us races with "
               << (b.is_write ? "write" : "read") << " by thread " << b.thread << " at "
               << b.time << "us (no common lock, no happens-before order)";
        findings.push_back(Finding{FindingKind::kUnprotectedSharedAccess, cell_id, a.thread,
                                   b.thread, b.time, detail.str()});
        cell.reported = true;
        break;
      }
    }
  }

  for (const BroadcastGroup& group : s.groups) {
    if (group.left_without_rewait >= 2) {
      std::ostringstream detail;
      detail << "broadcast on cv " << group.cv << " at " << group.time << "us woke "
             << group.woken << " waiters and " << group.left_without_rewait
             << " left the monitor without re-checking (WAIT not in a loop?)";
      findings.push_back(
          Finding{FindingKind::kWaitNotInLoop, group.cv, 0, 0, group.time, detail.str()});
    }
  }

  for (const auto& [cv_id, cv] : s.cvs) {
    if (cv.timeouts >= s.options.timeout_driven_min_waits && cv.notified == 0) {
      std::ostringstream detail;
      detail << "cv " << cv_id << ": all " << cv.timeouts
             << " completed waits ended by timeout, none by notify — timeout driven "
                "(missing NOTIFY?)";
      findings.push_back(
          Finding{FindingKind::kTimeoutDrivenCv, cv_id, 0, 0, cv.last_time, detail.str()});
    }
    // Requires >= 2 waits: a thread that waits and is never woken hangs in its first WAIT, so
    // repeated waits alongside all-no-op notifies means timeouts are doing the waking — a
    // genuinely missed rendezvous, not a schedule that merely delayed one waiter.
    if (cv.notifies >= s.options.notify_no_waiter_min && cv.notifies_woke == 0 &&
        cv.waits_started >= 2) {
      std::ostringstream detail;
      detail << "cv " << cv_id << ": " << cv.notifies << " notifies woke nobody while "
             << cv.waits_started << " waits were issued — notify and wait never met";
      findings.push_back(
          Finding{FindingKind::kNotifyWithoutWaiter, cv_id, 0, 0, cv.last_time, detail.str()});
    }
  }

  return findings;
}

std::vector<Finding> AnalyzeTrace(const trace::Tracer& tracer, const DetectorOptions& options) {
  TraceAnalyzer analyzer(options);
  for (const Event& e : tracer.view()) {
    analyzer.Feed(e);
  }
  return analyzer.Finish();
}

std::vector<uint64_t> CollectTraceCoverage(const trace::Tracer& tracer, uint64_t salt) {
  std::vector<uint64_t> keys;
  std::unordered_map<ObjectId, ThreadId> last_owner;
  std::unordered_map<ThreadId, int> locks_held;

  auto mix = [salt](uint64_t tag, uint64_t a, uint64_t b, uint64_t c) {
    uint64_t h = 0xcbf29ce484222325ull ^ salt;
    for (uint64_t v : {tag, a, b, c}) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xff;
        h *= 0x100000001b3ull;
      }
    }
    return h;
  };

  for (const Event& e : tracer.view()) {
    switch (e.type) {
      case EventType::kMlEnter: {
        ThreadId& prev = last_owner[e.object];
        keys.push_back(mix(1, e.object, prev, e.thread));
        prev = e.thread;
        ++locks_held[e.thread];
        break;
      }
      case EventType::kMlExit: {
        int& held = locks_held[e.thread];
        held = std::max(0, held - 1);
        break;
      }
      case EventType::kMlContend:
        keys.push_back(mix(2, e.object, e.thread, e.arg));
        break;
      case EventType::kCvNotified:
        keys.push_back(mix(3, e.object, e.thread, 1));
        break;
      case EventType::kCvTimeout:
        keys.push_back(mix(3, e.object, e.thread, 0));
        break;
      case EventType::kCvNotify:
      case EventType::kCvBroadcast:
        keys.push_back(mix(4, e.object, e.thread, e.arg > 0 ? 1 : 0));
        break;
      case EventType::kSharedRead:
      case EventType::kSharedWrite: {
        if (e.thread == 0) {
          break;  // host-context setup accesses, same filter as the race check
        }
        uint64_t is_write = e.type == EventType::kSharedWrite ? 1 : 0;
        uint64_t held = static_cast<uint64_t>(std::min(locks_held[e.thread], 3));
        keys.push_back(mix(5, e.object, e.thread, (is_write << 2) | held));
        break;
      }
      case EventType::kFaultInjected:
        keys.push_back(mix(6, e.object, e.arg, 0));
        break;
      case EventType::kWatchdogReport:
        keys.push_back(mix(7, e.object, 0, 0));
        break;
      case EventType::kForkFailed:
        keys.push_back(mix(8, e.thread, e.arg, 0));
        break;
      case EventType::kMonitorPoisoned:
        keys.push_back(mix(9, e.object, 0, 0));
        break;
      default:
        break;
    }
  }

  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::string RenderFindings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << "[" << FindingKindName(f.kind) << "] " << f.detail << "\n";
  }
  return os.str();
}

}  // namespace explore
