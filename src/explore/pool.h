// Work-stealing worker pool for host-parallel schedule execution.
//
// The simulation itself stays single-OS-threaded and deterministic: each explored schedule
// builds its own pcr::Runtime + Tracer and shares nothing with other schedules (all runtime
// "current" state is thread_local). The pool only parallelizes *across* schedules — the
// cooperative/competitive split: simulated threads cooperate inside one Runtime, OS workers
// compete for whole schedules. Determinism is the merge's job (explorer.cc), not the pool's.

#ifndef SRC_EXPLORE_POOL_H_
#define SRC_EXPLORE_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace explore {

class WorkerPool {
 public:
  // `workers` < 1 is clamped to 1 (the calling thread always participates as worker 0; only
  // workers-1 OS threads are spawned per Run call).
  explicit WorkerPool(int workers);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Executes fn(0) .. fn(count-1), each exactly once, using up to `workers` OS threads. Tasks
  // are dealt to per-worker deques in contiguous index blocks; an idle worker pops from the
  // front of its own deque and steals from the back of the busiest victim, so early indices
  // complete early and steals grab the work farthest from the victim's own cursor. Blocks
  // until every task has run. If any fn throws, remaining queued tasks are abandoned and the
  // exception from the lowest task index is rethrown here.
  void Run(size_t count, const std::function<void(size_t)>& fn);

  // Same, but fn also learns which worker is executing the task (0 <= worker < workers()).
  // Task->worker placement is timing-dependent — callers may key *allocations* off the worker
  // index (arenas, stack pools) but never anything that reaches results.
  void Run(size_t count, const std::function<void(size_t worker, size_t task)>& fn);

  int workers() const { return workers_; }

  // std::thread::hardware_concurrency with a floor of 1.
  static int HardwareWorkers();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  bool PopOrSteal(std::vector<std::unique_ptr<Queue>>& queues, size_t self, size_t* task);

  int workers_;
};

}  // namespace explore

#endif  // SRC_EXPLORE_POOL_H_
