// Repro strings: a failing schedule as a copy-pastable token.
//
// A schedule is fully determined by (scenario, runtime seed, perturber decision sequence): the
// runtime itself is deterministic, so replaying the recorded decisions byte-for-byte reproduces
// the identical trace. The encoding is deliberately compact and diff-friendly — decision
// streams are overwhelmingly zeros ("don't perturb here"), so runs are run-length encoded.
//
//   pcr1:<scenario>:<runtime_seed>:<decisions>[:<fault_plan>]
//   decisions := ( <hex-digit> [ 'r' <decimal-count> 'x' ] )*
//
// The decimal count would be ambiguous against a following hex digit, so it is always
// terminated with 'x'. Example: "pcr1:buggy_monitor:7:0r42x10r7x" = 42 defaults, one forced
// preempt, 7 defaults.
//
// The optional fifth field is a fault::Plan in its own grammar (src/fault/fault.h) — e.g.
// "pcr1:-:7:0r12x1:f1,notify-lost@2" — so a repro pins the injected faults along with the
// schedule. Four-field strings stay valid: an absent field means "no faults".

#ifndef SRC_EXPLORE_REPRO_H_
#define SRC_EXPLORE_REPRO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace explore {

// One recorded perturber decision, in consultation order. ForcePreempt consultations record
// 0 (no) or 1 (yes); PickNext tie-breaks record the chosen candidate index, clamped to 15.
using Decision = uint8_t;

// DecodeRepro rejects decision streams longer than this. Recorders stop at 2^20 decisions
// (perturbers.h kMaxRecordedDecisions), so no legitimate repro comes close; without the cap a
// hostile run-length ("0r999999999999x") would make the decoder allocate terabytes.
inline constexpr size_t kMaxReproDecisions = size_t{1} << 22;

// `fault_plan` is the serialized fault::Plan for the fifth field; "" omits the field.
std::string EncodeRepro(const std::string& scenario, uint64_t runtime_seed,
                        const std::vector<Decision>& decisions,
                        const std::string& fault_plan = "");

// Parses a repro string. Returns false on malformed input; outputs are untouched on failure.
// With `fault_plan` non-null it receives the fifth field's text ("" when absent); with it
// null, a fifth field is still accepted but dropped.
bool DecodeRepro(const std::string& repro, std::string* scenario, uint64_t* runtime_seed,
                 std::vector<Decision>* decisions, std::string* fault_plan = nullptr);

}  // namespace explore

#endif  // SRC_EXPLORE_REPRO_H_
