// Repro strings: a failing schedule as a copy-pastable token.
//
// A schedule is fully determined by (scenario, runtime seed, perturber decision sequence): the
// runtime itself is deterministic, so replaying the recorded decisions byte-for-byte reproduces
// the identical trace. The encoding is deliberately compact and diff-friendly — decision
// streams are overwhelmingly zeros ("don't perturb here"), so runs are run-length encoded.
//
//   pcr1:<scenario>:<runtime_seed>:<decisions>
//   decisions := ( <hex-digit> [ 'r' <decimal-count> 'x' ] )*
//
// The decimal count would be ambiguous against a following hex digit, so it is always
// terminated with 'x'. Example: "pcr1:buggy_monitor:7:0r42x10r7x" = 42 defaults, one forced
// preempt, 7 defaults.

#ifndef SRC_EXPLORE_REPRO_H_
#define SRC_EXPLORE_REPRO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace explore {

// One recorded perturber decision, in consultation order. ForcePreempt consultations record
// 0 (no) or 1 (yes); PickNext tie-breaks record the chosen candidate index, clamped to 15.
using Decision = uint8_t;

std::string EncodeRepro(const std::string& scenario, uint64_t runtime_seed,
                        const std::vector<Decision>& decisions);

// Parses a repro string. Returns false on malformed input; outputs are untouched on failure.
bool DecodeRepro(const std::string& repro, std::string* scenario, uint64_t* runtime_seed,
                 std::vector<Decision>* decisions);

}  // namespace explore

#endif  // SRC_EXPLORE_REPRO_H_
