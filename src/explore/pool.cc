#include "src/explore/pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

namespace explore {

WorkerPool::WorkerPool(int workers) : workers_(std::max(workers, 1)) {}

int WorkerPool::HardwareWorkers() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

bool WorkerPool::PopOrSteal(std::vector<std::unique_ptr<Queue>>& queues, size_t self,
                            size_t* task) {
  {
    Queue& mine = *queues[self];
    std::lock_guard<std::mutex> lock(mine.mu);
    if (!mine.tasks.empty()) {
      *task = mine.tasks.front();
      mine.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of the fullest victim: the back is the work the victim will reach
  // last, so a steal displaces the least locality.
  while (true) {
    size_t victim = queues.size();
    size_t victim_size = 0;
    for (size_t i = 0; i < queues.size(); ++i) {
      if (i == self) {
        continue;
      }
      std::lock_guard<std::mutex> lock(queues[i]->mu);
      if (queues[i]->tasks.size() > victim_size) {
        victim = i;
        victim_size = queues[i]->tasks.size();
      }
    }
    if (victim == queues.size()) {
      return false;  // every queue empty: nothing left to do
    }
    std::lock_guard<std::mutex> lock(queues[victim]->mu);
    if (!queues[victim]->tasks.empty()) {
      *task = queues[victim]->tasks.back();
      queues[victim]->tasks.pop_back();
      return true;
    }
    // Lost the race for that victim; rescan.
  }
}

void WorkerPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  Run(count, [&fn](size_t /*worker*/, size_t task) { fn(task); });
}

void WorkerPool::Run(size_t count, const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) {
    return;
  }
  size_t n = std::min<size_t>(static_cast<size_t>(workers_), count);
  if (n == 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(0, i);
    }
    return;
  }

  // Deal contiguous blocks so each worker starts on a distinct region of the index space.
  std::vector<std::unique_ptr<Queue>> queues;
  queues.reserve(n);
  for (size_t w = 0; w < n; ++w) {
    queues.push_back(std::make_unique<Queue>());
  }
  for (size_t w = 0; w < n; ++w) {
    size_t begin = count * w / n;
    size_t end = count * (w + 1) / n;
    for (size_t i = begin; i < end; ++i) {
      queues[w]->tasks.push_back(i);
    }
  }

  std::atomic<bool> abort{false};
  std::mutex error_mu;
  size_t error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;

  auto work = [&](size_t self) {
    size_t task = 0;
    while (!abort.load(std::memory_order_relaxed) && PopOrSteal(queues, self, &task)) {
      try {
        fn(self, task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (task < error_index) {
          error_index = task;
          error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (size_t w = 1; w < n; ++w) {
    threads.emplace_back(work, w);
  }
  work(0);
  for (std::thread& t : threads) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace explore
