// Canned concurrency-bug scenarios for the exploration harness.
//
// Each scenario is a small self-contained workload reproducing one bug pattern from the
// paper's catalogue (Section 5), with a known verdict: `expect_bug` says whether a competent
// explorer should find a failure. The buggy/good monitor pair is deliberately identical except
// for the one-token IF-vs-WHILE around WAIT — the difference the Mesa convention exists to
// erase (Section 5.3).
//
// Used by tools/pcrcheck (CLI) and tests/explore_test.cc.

#ifndef SRC_EXPLORE_SCENARIOS_H_
#define SRC_EXPLORE_SCENARIOS_H_

#include <string>
#include <vector>

#include "src/explore/explorer.h"

namespace explore {

struct BugScenario {
  std::string name;
  std::string description;
  bool expect_bug = false;     // should exploration report at least one failure?
  // Whether the body tolerates checkpoint-and-branch execution (ExploreOptions::checkpoint):
  // all run-affecting state must live in the body's frame, in runtime objects, or in
  // registered Checkpointables. Bodies holding state the checkpoint cannot rewind (globals,
  // heap side tables, non-trivially-copyable WeakCells) must clear this; registration then
  // forces options.checkpoint off so they always run from zero.
  bool checkpoint_safe = true;
  ExploreOptions options;      // tuned defaults; callers may override budget/seed
  TestBody body;
};

// The scenario table (stable order): the built-ins followed by registered extras.
const std::vector<BugScenario>& Scenarios();

// Lookup by name; nullptr when unknown.
const BugScenario* FindScenario(const std::string& name);

// Appends a scenario to the registry, visible to every later Scenarios()/FindScenario call.
// Returns false (registry unchanged) when the name is empty or already taken, which makes
// registration idempotent. options.scenario_name is forced to the scenario name so repro
// strings stay self-describing. Not thread-safe — register during startup, before exploration
// fans out; registration may reallocate the table, so don't hold BugScenario pointers across it.
bool RegisterScenario(BugScenario scenario);

}  // namespace explore

#endif  // SRC_EXPLORE_SCENARIOS_H_
