// Schedule exploration: run one test body under many perturbed-but-deterministic schedules,
// analyze every trace, and hand back a replayable repro string for each failure.
//
// The paper's bug catalogue (Sections 5.3-5.5) is full of failures that only appear under rare
// interleavings: a WAIT outside a loop is fine until a barging thread poaches the predicate, a
// missing NOTIFY hides behind its timeout, an unprotected load is benign until a store lands
// between check and use. The runtime is deterministic given (Config, workload), so a single
// extra input — the decision stream of a SchedulePerturber — is enough to both explore many
// schedules and replay any one of them exactly.
//
//   explore::Explorer ex(explore::ExploreOptions{.budget = 200});
//   explore::ExploreResult r = ex.Explore(body);
//   if (!r.failures.empty()) {
//     // r.failures[0].repro is e.g. "pcr1:-:7:0r12x10r3x2"; feed it to tools/pcrcheck --replay
//     explore::ScheduleOutcome again = ex.Replay(r.failures[0].repro, body);
//     assert(again.trace_hash == r.failures[0].trace_hash);
//   }

#ifndef SRC_EXPLORE_EXPLORER_H_
#define SRC_EXPLORE_EXPLORER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/explore/detector.h"
#include "src/explore/dpor.h"
#include "src/explore/hash.h"
#include "src/explore/perturbers.h"
#include "src/explore/repro.h"
#include "src/fault/fault.h"
#include "src/pcr/runtime.h"
#include "src/pcr/stack.h"
#include "src/trace/event.h"

namespace explore {

// Collects assertion results from inside the test body. Fiber code must not throw across the
// scheduler, so checks record rather than abort; the run keeps going and reports everything.
class TestContext {
 public:
  // Records a failure (and returns false) when `ok` is false.
  bool Check(bool ok, std::string message) {
    if (!ok) {
      failures_.push_back(std::move(message));
    }
    return ok;
  }
  void Fail(std::string message) { failures_.push_back(std::move(message)); }

  bool failed() const { return !failures_.empty(); }
  const std::vector<std::string>& failures() const { return failures_; }

 private:
  std::vector<std::string> failures_;
};

// A test body: set up threads, run virtual time, make TestContext checks. Must leave the
// runtime quiescent or call rt.Shutdown() before returning. Runs many times — keep all state
// local so every invocation starts fresh.
using TestBody = std::function<void(pcr::Runtime& rt, TestContext& ctx)>;

struct ExploreOptions {
  std::string scenario_name = "-";  // embedded in repro strings so they are self-describing
  int budget = 100;                 // schedules to run (schedule 0 is always unperturbed)
  uint64_t seed = 1;                // master seed; all per-schedule seeds derive from it
  bool sweep_runtime_seed = true;   // vary Config::seed across schedules too
  double preempt_probability = 0.15;
  double shuffle_probability = 0.3;
  bool fail_on_findings = true;     // detector findings count as failures
  pcr::Config base_config;          // per-run Config (seed field may be swept)
  size_t max_failures = 8;          // stop exploring after this many distinct failures
  bool minimize = true;             // shrink failing decision streams before reporting
  // Base fault plan injected into every schedule (disabled by default). With sweep_fault_seed,
  // each perturbed schedule redraws the plan's probabilistic seed from the master RNG, so one
  // Explore call searches fault x schedule space; the baseline keeps the plan verbatim.
  fault::Plan fault_plan;
  bool sweep_fault_seed = true;
  DetectorOptions detector;
  // OS worker threads schedules are fanned across (0 = hardware concurrency, 1 = serial).
  // The result is byte-identical for every value: schedules execute on whichever worker is
  // free, but they are merged in schedule-index order.
  int workers = 0;
  // Populate ScheduleOutcome::coverage after each run (campaign.h's feedback signal): prefix
  // trace hashes every coverage_stride events plus the interleaving/fault/watchdog keys from
  // CollectTraceCoverage. Off by default — plain exploration never pays for it.
  bool collect_coverage = false;
  size_t coverage_stride = 64;
  uint64_t coverage_salt = 0;  // mixed into every key; the campaign salts per scenario
  // Execute schedule groups by checkpoint-and-branch: snapshot the simulation at each group's
  // divergence points and replay only the suffix per schedule (O(suffix) instead of O(horizon)).
  // Results are byte-identical either way; this only changes how they are computed. Ignored
  // (treated as false) in builds where pcr::Checkpoint::Supported() is false — ucontext fibers
  // or sanitizers. Turn off for bodies that keep non-checkpointable state outside the runtime
  // (see BugScenario::checkpoint_safe).
  bool checkpoint = true;
  // DPOR-style leaf pruning (dpor.h): pre-simulate each candidate leaf's decision stream over
  // its executed sibling's consultation log and skip leaves that are provably the same
  // schedule (sleep set) or diverge only inside the independent tail (drain-tail elision).
  // Pruning only ever copies *passing* witness outcomes, so reported failures — findings,
  // hashes, repros — are byte-identical with this off; only distinct_schedules can differ
  // (pruned leaves contribute their witness's hash instead of executing). Applies identically
  // to checkpointed and from-zero execution; disabled automatically for fault-plan sweeps
  // (injector state is interleaving-sensitive).
  bool dpor = true;
};

// Everything known about one executed schedule.
struct ScheduleOutcome {
  int schedule_index = -1;
  bool failed = false;
  std::vector<std::string> failures;  // TestContext messages (+ rendered findings if opted in)
  std::vector<Finding> findings;      // detector output, always populated
  uint64_t trace_hash = 0;
  std::string repro;                  // replayable repro string for this exact schedule
  uint64_t preempt_points = 0;        // ForcePreempt consultations seen (the PCT horizon)
  uint64_t total_decisions = 0;       // consultations of either kind (the d1/d2 index space)
  std::vector<fault::ScriptedFault> fired_faults;  // faults that fired, in firing order
  // Sorted, deduplicated coverage keys (only with ExploreOptions::collect_coverage): prefix
  // trace hashes + CollectTraceCoverage edges. The campaign unions these per run.
  std::vector<uint64_t> coverage;
};

// Self-profiling for one Explore call: where the wall time went, and how much of the per-run
// cost is the race detector versus the runtime itself. Phase times are wall clock; run_sec and
// detector_sec are summed across workers, so on an N-worker pool they can exceed total_sec.
struct ExploreProfile {
  double total_sec = 0;
  double baseline_sec = 0;   // schedule 0 (serial, also sets the PCT horizon)
  double sweep_sec = 0;      // the parallel schedule fan-out
  double minimize_sec = 0;   // shrinking failing decision streams
  double run_sec = 0;        // summed: body execution + runtime shutdown, all schedules
  double detector_sec = 0;   // summed: AnalyzeTrace over every schedule's trace
  double schedules_per_sec = 0;
  // Runtime counters summed across every schedule the Explore call executed (baseline, sweep,
  // minimization replays). stack_pool_hits depends on which worker ran which schedule, so it is
  // informational only — never part of result comparison.
  int64_t fiber_switches = 0;
  int64_t stack_acquires = 0;
  int64_t stack_pool_hits = 0;
  // Checkpoint-and-branch counters (all zero with ExploreOptions::checkpoint off or
  // unsupported). pruned_schedules counts schedules whose outcome was copied from an
  // already-executed group member because their state fingerprints matched at the divergence
  // point — they are included in schedules_run but cost no execution.
  int64_t checkpoint_saves = 0;
  int64_t checkpoint_resumes = 0;
  int64_t checkpoint_bytes = 0;
  int64_t pruned_schedules = 0;
  // DPOR counters (subsets of pruned_schedules; zero with ExploreOptions::dpor off):
  // dpor_pruned counts leaves whose pre-simulated decision stream matched the witness's
  // exactly, drain_spliced counts leaves whose first divergence fell inside the witness's
  // independent tail.
  int64_t dpor_pruned = 0;
  int64_t drain_spliced = 0;
  // Adaptive segment-boundary placement: the no-jitter target consultation indices chosen
  // from the baseline's decision density (boundary_d3 is zero for two-level geometries).
  uint64_t boundary_d1 = 0;
  uint64_t boundary_d2 = 0;
  uint64_t boundary_d3 = 0;
};

struct ExploreResult {
  int schedules_run = 0;
  int distinct_schedules = 0;              // distinct trace hashes seen
  std::vector<ScheduleOutcome> failures;   // one entry per distinct failing bug, minimized
  ScheduleOutcome baseline;                // schedule 0 (unperturbed)
  ExploreProfile profile;
};

class Explorer {
 public:
  explicit Explorer(ExploreOptions options = {});

  // Runs up to options.budget schedules. Deterministic: same options + same body => same result.
  ExploreResult Explore(const TestBody& body);

  // Re-executes the schedule described by `repro` (scenario field ignored here). Throws
  // pcr::UsageError on a malformed repro string. With `capture` non-null, the replayed run's
  // full event stream and symbol table are copied into it (the tracer's prior events are kept;
  // its symbol table is replaced) — the hook pcrcheck uses to export failing schedules.
  ScheduleOutcome Replay(const std::string& repro, const TestBody& body,
                         trace::Tracer* capture = nullptr);

  // Prefix-truncates and zeroes decisions (and shrinks fault plans to the fired script) while
  // the same bug keeps reproducing. Public so the campaign can minimize crashing corpus
  // entries with the exact path pcrcheck failures already use; deterministic (bounded replay
  // budget, no randomness).
  ScheduleOutcome Minimize(const ScheduleOutcome& outcome, const TestBody& body) {
    return Minimize(outcome, body, nullptr);
  }

  const ExploreOptions& options() const { return options_; }

 private:
  struct Plan {
    uint64_t runtime_seed = 1;
    PerturbPolicy policy;                // recording mode when `replay` is empty
    std::vector<Decision> replay;
    bool replay_mode = false;
    fault::Plan fault_plan;              // installed for the run when enabled()
  };

  // Warm capacity one pool worker carries from schedule to schedule within an Explore call:
  // guard-paged stacks and the trace event buffer, the two dominant per-Runtime allocations.
  // Only *capacity* is recycled — a recycled arena and a fresh one produce byte-identical
  // outcomes, which is what keeps results independent of worker count. The symbol table is
  // deliberately not here: interning order differs per schedule, so reuse would leak state.
  struct WorkerArena {
    pcr::StackPool stacks;
    trace::SegmentArena trace_buffer;
  };

  // One prefix-grouped work unit: up to prod(fanout) consecutive schedules sharing the
  // segment-1 decision prefix (seed q0 + the group's change points). Crossing consultation
  // depths[k] fires segment level k+1: a level-1 child c reseeds to MixSeed(q0, 1, c); a
  // level-l>=2 child c reseeds to MixSeed(q0 ^ F, l, c), where F is the trace-prefix
  // fingerprint at the boundary — so equal fingerprints provably yield identical
  // continuations, which is what makes state-hash pruning exact, not heuristic. Flat schedule
  // index of coordinates (c0, .., cL-1) is first_schedule + sum(ck * stride_k) in row-major
  // order; cells past the overall budget are skipped (members counts the in-budget ones).
  struct GroupPlan {
    int group_index = 0;
    int first_schedule = 1;
    std::vector<int> fanout;              // children per tree level (last level = leaves)
    std::vector<uint64_t> depths;         // divergence consultation indices, strictly increasing
    int members = 1;
    uint64_t runtime_seed = 1;
    uint64_t q0 = 0;                      // segment-1 decision seed and reseed basis
    std::vector<uint64_t> change_points;  // group-shared PCT change points
    bool dpor = false;                    // leaf-level sleep-set pruning for this group
    fault::Plan fault_plan;
  };

  // Everything RunGroupMember reports about one from-zero probe run beyond its outcome:
  // how many segment levels it crossed, the reseed fingerprints at each crossed level >= 2,
  // and (when the group prunes) the dpor witness data mirrored from the checkpoint path.
  struct MemberProbe {
    int reached = 0;                      // segment levels crossed (0 = ended before depths[0])
    std::vector<uint64_t> fingerprints;   // indexed by level; [0..1] unused
    bool witness_valid = false;           // passing run with an aligned consultation log
    std::vector<ConsultRecord> suffix;    // consult records from depths.back() onward
    uint64_t independent_tail_event = 0;
  };

 public:
  // Checkpoint/pruning counters accumulated since the last Explore() call (which resets them).
  // Replay/Minimize add to them whenever they run grouped plans. The fuzzing campaign reads
  // these per-scenario explorers for its status JSON.
  int64_t checkpoint_saves() const { return checkpoint_saves_.load(std::memory_order_relaxed); }
  int64_t checkpoint_resumes() const {
    return checkpoint_resumes_.load(std::memory_order_relaxed);
  }
  int64_t checkpoint_bytes() const { return checkpoint_bytes_.load(std::memory_order_relaxed); }
  int64_t pruned_schedules() const { return pruned_.load(std::memory_order_relaxed); }
  int64_t dpor_pruned() const { return dpor_pruned_.load(std::memory_order_relaxed); }
  int64_t drain_spliced() const { return drain_spliced_.load(std::memory_order_relaxed); }

 private:
  ScheduleOutcome RunPlan(const Plan& plan, int schedule_index, const TestBody& body,
                          trace::Tracer* capture = nullptr, WorkerArena* arena = nullptr,
                          std::vector<ConsultRecord>* consult_log = nullptr);
  // Group execution: checkpoint-and-branch (O(suffix) per schedule) or from-zero replay of the
  // same plans. Both fill `outcomes` (size group.members, flat order) with byte-identical
  // results and identical pruned counts.
  void RunGroupCheckpoint(const GroupPlan& group, const TestBody& body,
                          std::vector<ScheduleOutcome>* outcomes, WorkerArena* arena);
  void RunGroupReplay(const GroupPlan& group, const TestBody& body,
                      std::vector<ScheduleOutcome>* outcomes, WorkerArena* arena);
  // From-zero execution of one group member on the calling frame. `path` gives the member's
  // per-level coordinates (path.size() == group.depths.size()); `probe` receives the run's
  // segment telemetry (and dpor witness data when group.dpor and the path ends in leaf 0).
  ScheduleOutcome RunGroupMember(const GroupPlan& group, const std::vector<int>& path,
                                 const TestBody& body, WorkerArena* arena, MemberProbe* probe);
  // Shared post-run analysis: detector, trace hash, coverage, repro encoding. When the caller
  // already holds the running hash of a trace prefix (checkpointed groups hash the shared
  // prefix once), resume_hasher/resume_events let the trace hash continue from it instead of
  // rehashing from event zero — FNV continuation is value-identical to the full pass. The same
  // boundary feeds resume_analyzer: a detector fold already carried to resume_events continues
  // over the suffix only, and both are checked byte-identical against from-zero mode by the
  // equivalence suite.
  void FillOutcome(trace::Tracer& tracer, const TestContext& ctx,
                   const std::vector<Decision>& decisions, uint64_t preempt_points,
                   uint64_t total_decisions, const std::vector<fault::ScriptedFault>& fired,
                   uint64_t runtime_seed, const fault::Plan& fault_plan, int schedule_index,
                   ScheduleOutcome* out, const TraceHasher* resume_hasher = nullptr,
                   size_t resume_events = 0, const TraceAnalyzer* resume_analyzer = nullptr);
  ScheduleOutcome Minimize(const ScheduleOutcome& outcome, const TestBody& body,
                           WorkerArena* arena);
  static bool SameFailure(const ScheduleOutcome& a, const ScheduleOutcome& b);

  ExploreOptions options_;
  // Profile accumulators; atomics because RunPlan executes concurrently on pool workers.
  std::atomic<int64_t> run_ns_{0};
  std::atomic<int64_t> detector_ns_{0};
  std::atomic<int64_t> fiber_switches_{0};
  std::atomic<int64_t> stack_acquires_{0};
  std::atomic<int64_t> stack_pool_hits_{0};
  std::atomic<int64_t> checkpoint_saves_{0};
  std::atomic<int64_t> checkpoint_resumes_{0};
  std::atomic<int64_t> checkpoint_bytes_{0};
  std::atomic<int64_t> pruned_{0};
  std::atomic<int64_t> dpor_pruned_{0};
  std::atomic<int64_t> drain_spliced_{0};
};

}  // namespace explore

#endif  // SRC_EXPLORE_EXPLORER_H_
