#include "src/explore/scenarios.h"

#include "src/pcr/runtime.h"
#include "src/weakmem/weakmem.h"

namespace explore {

namespace {

// A one-token rendezvous with a barging "poacher". The producer holds the monitor for a long
// critical section, so by the time it exits, both the notified consumer and the poacher are
// competing for the lock (Mesa semantics: the woken waiter "must compete for the monitor's
// mutex"). Whether the consumer's once-checked predicate still holds depends entirely on who
// wins — which is exactly what the perturber's tie-break shuffle varies.
//
// `safe` selects the WHILE-loop (convention-following) consumer; !safe is the Section 5.3 bug.
void TokenPoolBody(pcr::Runtime& rt, TestContext& ctx, bool safe) {
  constexpr int kRounds = 8;
  pcr::MonitorLock pool(rt.scheduler(), "token-pool");
  pcr::Condition available(pool, "available", -1);
  int tokens = 0;

  rt.Fork([&rt, &ctx, &pool, &available, &tokens, safe] {
    for (int r = 0; r < kRounds; ++r) {
      pcr::MonitorGuard g(pool);
      if (safe) {
        while (tokens == 0) {
          available.Wait();
        }
      } else if (tokens == 0) {  // BUG: IF where the convention demands WHILE (Section 5.3)
        available.Wait();
      }
      if (!ctx.Check(tokens > 0,
                     "consumer woke with zero tokens: WAIT was not re-checked in a loop")) {
        return;  // predicate is broken; stop before the count goes negative
      }
      --tokens;
    }
  });
  rt.Fork([&rt, &pool, &tokens] {  // poacher: takes any token it can barge onto
    for (int r = 0; r < kRounds; ++r) {
      pcr::thisthread::Compute(230);
      pcr::MonitorGuard g(pool);
      if (tokens > 0) {
        --tokens;
      }
    }
  });
  rt.Fork([&rt, &pool, &available, &tokens] {  // producer
    for (int r = 0; r < kRounds; ++r) {
      pcr::thisthread::Compute(100);
      pcr::MonitorGuard g(pool);
      pcr::thisthread::Compute(80);  // long critical section: lets contenders pile up
      ++tokens;
      available.Notify();
    }
  });

  rt.RunFor(60 * pcr::kUsecPerMsec);
  rt.Shutdown();  // before the monitor/CV above go out of scope
}

void BuggyMonitorBody(pcr::Runtime& rt, TestContext& ctx) { TokenPoolBody(rt, ctx, false); }
void GoodMonitorBody(pcr::Runtime& rt, TestContext& ctx) { TokenPoolBody(rt, ctx, true); }

// A producer/consumer queue whose producer "forgets" to NOTIFY; the consumer's CV timeout
// masks the bug — the system "apparently works correctly but slowly" (Section 5.3). The
// progress check passes; only the detector's timeout-driven-CV heuristic exposes the bug.
void MissingNotifyBody(pcr::Runtime& rt, TestContext& ctx) {
  constexpr int kItems = 4;
  pcr::MonitorLock queue(rt.scheduler(), "queue");
  pcr::Condition ready(queue, "ready", pcr::kUsecPerMsec);
  int items = 0;
  int taken = 0;

  rt.Fork([&rt, &queue, &ready, &items, &taken] {
    for (int r = 0; r < kItems; ++r) {
      pcr::MonitorGuard g(queue);
      while (items == 0) {
        ready.Wait();  // ends by timeout every time: nobody ever notifies
      }
      --items;
      ++taken;
    }
  });
  rt.Fork([&rt, &queue, &items] {
    for (int r = 0; r < kItems; ++r) {
      pcr::thisthread::Compute(3500);  // slow producer: the consumer times out repeatedly
      pcr::MonitorGuard g(queue);
      ++items;
      // BUG: missing ready.Notify() — the timeout on the CV papers over it.
    }
  });

  rt.RunFor(80 * pcr::kUsecPerMsec);
  ctx.Check(taken == kItems, "consumer starved: timeouts failed to mask the missing NOTIFY");
  rt.Shutdown();
}

// Two threads increment a weakly-ordered shared cell with no lock: the Section 5.5 pattern.
// The lockset detector flags the unordered cross-thread accesses in any schedule.
void WeakmemRaceBody(pcr::Runtime& rt, TestContext& /*ctx*/) {
  weakmem::WeakCell<int> counter(rt, 0);

  for (int t = 0; t < 2; ++t) {
    rt.Fork([&rt, &counter, t] {
      for (int i = 0; i < 4; ++i) {
        int v = counter.Load();
        pcr::thisthread::Compute(7 + t);
        counter.Store(v + 1);  // read-modify-write with no lock: updates can be lost
        pcr::thisthread::Compute(11 + 2 * t);
      }
    });
  }

  rt.RunFor(10 * pcr::kUsecPerMsec);
  rt.Shutdown();
}

std::vector<BugScenario> BuildScenarios() {
  std::vector<BugScenario> list;

  {
    BugScenario s;
    s.name = "buggy_monitor";
    s.description = "IF-guarded WAIT loses its token to a barging poacher (Section 5.3)";
    s.expect_bug = true;
    s.options.scenario_name = s.name;
    s.options.budget = 200;
    s.options.fail_on_findings = false;  // the assertion is the oracle here
    s.options.base_config.quantum = pcr::kUsecPerMsec;
    s.body = BuggyMonitorBody;
    list.push_back(std::move(s));
  }
  {
    BugScenario s;
    s.name = "good_monitor";
    s.description = "same workload with WHILE-guarded WAIT: no schedule breaks it";
    s.expect_bug = false;
    s.options.scenario_name = s.name;
    s.options.budget = 200;
    s.options.fail_on_findings = true;
    s.options.base_config.quantum = pcr::kUsecPerMsec;
    s.body = GoodMonitorBody;
    list.push_back(std::move(s));
  }
  {
    BugScenario s;
    s.name = "missing_notify";
    s.description = "forgotten NOTIFY masked by a CV timeout; system runs timeout driven";
    s.expect_bug = true;
    s.options.scenario_name = s.name;
    s.options.budget = 20;  // the detector sees it in any schedule
    s.options.fail_on_findings = true;
    s.options.base_config.quantum = pcr::kUsecPerMsec;
    s.body = MissingNotifyBody;
    list.push_back(std::move(s));
  }
  {
    BugScenario s;
    s.name = "weakmem_race";
    s.description = "unlocked read-modify-write of a weakly-ordered cell (Section 5.5)";
    s.expect_bug = true;
    s.options.scenario_name = s.name;
    s.options.budget = 20;
    s.options.fail_on_findings = true;
    s.options.base_config.quantum = pcr::kUsecPerMsec;
    s.body = WeakmemRaceBody;
    list.push_back(std::move(s));
  }

  return list;
}

}  // namespace

namespace {

std::vector<BugScenario>& Registry() {
  static std::vector<BugScenario>* scenarios = new std::vector<BugScenario>(BuildScenarios());
  return *scenarios;
}

}  // namespace

const std::vector<BugScenario>& Scenarios() { return Registry(); }

bool RegisterScenario(BugScenario scenario) {
  if (scenario.name.empty() || FindScenario(scenario.name) != nullptr) {
    return false;
  }
  scenario.options.scenario_name = scenario.name;
  scenario.options.checkpoint = scenario.checkpoint_safe;
  Registry().push_back(std::move(scenario));
  return true;
}

const BugScenario* FindScenario(const std::string& name) {
  for (const BugScenario& s : Scenarios()) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

}  // namespace explore
