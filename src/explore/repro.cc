#include "src/explore/repro.h"

#include <cctype>

namespace explore {

namespace {

constexpr char kMagic[] = "pcr1";

char HexDigit(Decision d) {
  return d < 10 ? static_cast<char>('0' + d) : static_cast<char>('a' + (d - 10));
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

}  // namespace

std::string EncodeRepro(const std::string& scenario, uint64_t runtime_seed,
                        const std::vector<Decision>& decisions,
                        const std::string& fault_plan) {
  // One encode per explored schedule: build in place with a single reservation instead of
  // chaining temporary strings (the worst case is one hex digit per decision).
  std::string out;
  out.reserve(sizeof(kMagic) + scenario.size() + 24 + decisions.size() + fault_plan.size() + 2);
  out += kMagic;
  out += ':';
  out += scenario;
  out += ':';
  char seed_buf[21];  // max uint64 is 20 digits
  char* seed_end = seed_buf + sizeof(seed_buf);
  char* seed_p = seed_end;
  uint64_t seed = runtime_seed;
  do {
    *--seed_p = static_cast<char>('0' + seed % 10);
    seed /= 10;
  } while (seed != 0);
  out.append(seed_p, seed_end);
  out += ':';
  size_t i = 0;
  while (i < decisions.size()) {
    Decision value = decisions[i] > 15 ? 15 : decisions[i];
    size_t run = 1;
    while (i + run < decisions.size() &&
           (decisions[i + run] > 15 ? 15 : decisions[i + run]) == value) {
      ++run;
    }
    out += HexDigit(value);
    if (run > 1) {
      // The count is decimal and would be ambiguous against a following hex digit, so it is
      // always terminated with 'x'.
      char run_buf[21];
      char* run_end = run_buf + sizeof(run_buf);
      char* run_p = run_end;
      size_t n = run;
      do {
        *--run_p = static_cast<char>('0' + n % 10);
        n /= 10;
      } while (n != 0);
      out += 'r';
      out.append(run_p, run_end);
      out += 'x';
    }
    i += run;
  }
  if (!fault_plan.empty()) {
    out += ':';
    out += fault_plan;
  }
  return out;
}

bool DecodeRepro(const std::string& repro, std::string* scenario, uint64_t* runtime_seed,
                 std::vector<Decision>* decisions, std::string* fault_plan) {
  size_t p1 = repro.find(':');
  if (p1 == std::string::npos || repro.substr(0, p1) != kMagic) {
    return false;
  }
  size_t p2 = repro.find(':', p1 + 1);
  size_t p3 = p2 == std::string::npos ? std::string::npos : repro.find(':', p2 + 1);
  if (p3 == std::string::npos) {
    return false;
  }
  std::string name = repro.substr(p1 + 1, p2 - p1 - 1);
  std::string seed_str = repro.substr(p2 + 1, p3 - p2 - 1);
  if (name.empty() || seed_str.empty()) {
    return false;
  }
  uint64_t seed = 0;
  for (char c : seed_str) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return false;
    }
    seed = seed * 10 + static_cast<uint64_t>(c - '0');
  }
  // The decision field ends at the optional fifth colon; everything after it is the fault
  // plan, passed through verbatim (fault::Plan::Decode owns that grammar).
  size_t p4 = repro.find(':', p3 + 1);
  size_t decisions_end = p4 == std::string::npos ? repro.size() : p4;
  std::string fault_text =
      p4 == std::string::npos ? std::string() : repro.substr(p4 + 1);
  if (p4 != std::string::npos && fault_text.empty()) {
    return false;  // a trailing ':' with nothing after it is malformed, not "no faults"
  }
  std::vector<Decision> parsed;
  size_t i = p3 + 1;
  while (i < decisions_end) {
    int value = HexValue(repro[i]);
    if (value < 0) {
      return false;
    }
    ++i;
    size_t run = 1;
    if (i < decisions_end && repro[i] == 'r') {
      ++i;
      size_t start = i;
      run = 0;
      while (i < decisions_end && std::isdigit(static_cast<unsigned char>(repro[i]))) {
        run = run * 10 + static_cast<size_t>(repro[i] - '0');
        ++i;
      }
      if (i == start || run == 0 || i >= decisions_end || repro[i] != 'x') {
        return false;
      }
      if (i - start > 9) {
        return false;  // >9 digits can only describe an oversized stream; reject before it
      }
      ++i;  // the 'x' terminator
    }
    if (run > kMaxReproDecisions || parsed.size() + run > kMaxReproDecisions) {
      return false;  // oversized decision stream (see kMaxReproDecisions)
    }
    parsed.insert(parsed.end(), run, static_cast<Decision>(value));
  }
  *scenario = std::move(name);
  *runtime_seed = seed;
  *decisions = std::move(parsed);
  if (fault_plan != nullptr) {
    *fault_plan = std::move(fault_text);
  }
  return true;
}

}  // namespace explore
