#include "src/apps/editor.h"

#include <stdexcept>
#include <utility>

#include "src/paradigm/defer.h"
#include "src/paradigm/fork_helpers.h"

namespace apps {

namespace {
constexpr pcr::Usec kMs = pcr::kUsecPerMsec;

// Toy spellcheck heuristic: words without vowels look suspicious.
bool LooksMisspelled(const std::string& word) {
  if (word.size() < 3) {
    return false;
  }
  for (char c : word) {
    if (std::string_view("aeiouyAEIOUY").find(c) != std::string_view::npos) {
      return false;
    }
  }
  return true;
}

}  // namespace

Editor::Editor(pcr::Runtime& runtime, world::XServerModel& xserver,
               pcr::Usec file_server_latency)
    : runtime_(runtime), xserver_(xserver), file_server_latency_(file_server_latency),
      keyboard_(runtime.scheduler(), "editor-keyboard"),
      edits_(runtime.scheduler(), "editor-edits", /*capacity=*/0),
      doc_lock_(runtime.scheduler(), "editor-document"),
      macro_queue_(runtime.scheduler(), "editor-macros", /*capacity=*/0),
      save_timeout_(paradigm::AdaptiveTimeoutOptions{.initial = 20 * kMs, .floor = kMs}) {
  background_ = std::make_unique<paradigm::WorkQueue>(
      runtime_, "editor-background",
      paradigm::WorkQueueOptions{.workers = 2, .priority = 2});
  revert_button_ = std::make_unique<paradigm::GuardedButton>(
      runtime_, "revert-document", [this] {
        pcr::MonitorGuard guard(doc_lock_);
        lines_.assign(1, "");
        undo_log_.clear();
        ++version_;
        ++stats_.reverts;
      });
  StartRepaint();
  StartEditThread();
  StartAutosave();
  StartMacroEngine();
}

Editor::~Editor() { runtime_.Shutdown(); }

void Editor::StartRepaint() {
  paradigm::SlackOptions options;
  // Sleep-based batching: typing is slower than the imaging bursts of Section 5.2, so the
  // buffer thread sleeps a beat and gathers a tick's worth of damage (fine at this quantum,
  // per the Section 6.3 analysis).
  options.policy = paradigm::SlackPolicy::kSleep;
  options.sleep_interval = 10 * kMs;
  options.priority = 5;
  repaint_ = std::make_unique<paradigm::SlackProcess<world::PaintRequest>>(
      runtime_, "editor-repaint",
      [this](std::vector<world::PaintRequest>&& batch) { xserver_.Send(batch); },
      [](std::vector<world::PaintRequest>& batch) {
        world::XServerModel::MergeOverlapping(batch);
      },
      options);
}

void Editor::StartEditThread() {
  // The keystroke pipeline: interrupt -> edit applier (a pump into the document).
  runtime_.ForkDetached(
      [this] {
        while (true) {
          uint64_t payload = keyboard_.Await();
          ++stats_.keystrokes;
          ApplyKey(static_cast<uint32_t>(payload), runtime_.now());
        }
      },
      pcr::ForkOptions{.name = "editor-input", .priority = 6});
}

void Editor::ApplyKey(uint32_t key, pcr::Usec pressed_at) {
  std::string completed_word;
  int damaged_line;
  {
    pcr::MonitorGuard guard(doc_lock_);
    if (key == kKeyUndo) {
      ApplyUndo();
      damaged_line = static_cast<int>(lines_.size()) - 1;
    } else {
      undo_log_.push_back(lines_);
      if (key == kKeyNewline) {
        completed_word = std::exchange(current_word_, "");
        lines_.emplace_back();
      } else {
        char c = static_cast<char>(key);
        lines_.back().push_back(c);
        if (c == ' ') {
          completed_word = std::exchange(current_word_, "");
        } else {
          current_word_.push_back(c);
        }
      }
      ++stats_.edits_applied;
      ++version_;
      damaged_line = static_cast<int>(lines_.size()) - 1;
    }
    pcr::thisthread::Compute(80);  // glyph layout for the damaged line
  }
  repaint_->Submit(world::PaintRequest{pressed_at, 0, damaged_line});
  if (!completed_word.empty()) {
    // Spellchecking is not needed for the keystroke to echo: defer it (Section 4.1).
    paradigm::DeferWork(
        runtime_, [this, word = std::move(completed_word)] { SpellcheckWord(word); },
        paradigm::DeferOptions{.name = "spellcheck", .priority = 2});
  }
}

void Editor::ApplyUndo() {
  if (!undo_log_.empty()) {
    lines_ = std::move(undo_log_.back());
    undo_log_.pop_back();
    if (lines_.empty()) {
      lines_.emplace_back();
    }
    ++version_;
    ++stats_.undos;
    current_word_.clear();
  }
}

void Editor::SpellcheckWord(std::string word) {
  pcr::thisthread::Compute(300);  // dictionary probe
  ++stats_.spellcheck_passes;
  if (LooksMisspelled(word)) {
    ++stats_.suspect_words;
    repaint_->Submit(world::PaintRequest{runtime_.now(), 0, 1'000'000});  // squiggle
  }
}

void Editor::StartAutosave() {
  autosave_ = std::make_unique<paradigm::Sleeper>(
      runtime_, "editor-autosave", 2 * pcr::kUsecPerSec,
      [this] {
        std::vector<std::string> snapshot;
        {
          pcr::MonitorGuard guard(doc_lock_);
          snapshot = lines_;
        }
        // The write itself happens on the background pool, off the autosave sleeper.
        background_->Submit(
            [this, snapshot = std::move(snapshot)] { SaveSnapshot(snapshot); });
      },
      /*priority=*/3);
}

void Editor::SaveSnapshot(std::vector<std::string> snapshot) {
  // Mock file-server RPC with end-to-end adaptive timeout: if the "server" responds within the
  // current budget the save commits; otherwise we record a retry and back the timeout off.
  pcr::Usec budget = save_timeout_.current();
  pcr::Usec started = runtime_.now();
  pcr::Usec work = file_server_latency_ +
                   static_cast<pcr::Usec>(snapshot.size()) * 50;  // size-dependent write
  pcr::thisthread::Compute(std::min(work, budget));
  if (work > budget) {
    ++stats_.save_retries;
    save_timeout_.RecordTimeout();
    pcr::thisthread::Compute(work - budget);  // the retry completes the write
  }
  save_timeout_.RecordResponse(runtime_.now() - started);
  ++stats_.autosaves;
}

void Editor::StartMacroEngine() {
  macro_engine_ = std::make_unique<paradigm::RejuvenatingTask>(
      runtime_, "editor-macro-engine",
      [this] {
        while (true) {
          std::optional<std::string> macro = macro_queue_.Take();
          if (!macro.has_value()) {
            return;
          }
          if (*macro == "crash") {
            ++stats_.macro_crashes;
            throw std::runtime_error("macro dereferenced a dead buffer");
          }
          if (*macro == "upcase") {
            pcr::MonitorGuard guard(doc_lock_);
            for (char& c : lines_.front()) {
              c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
            }
            ++version_;
          }
          pcr::thisthread::Compute(kMs);
        }
      },
      paradigm::RejuvenateOptions{.priority = 3});
}

void Editor::TypeText(std::string_view text, pcr::Usec start, double rate) {
  auto gap = static_cast<pcr::Usec>(1e6 / rate);
  pcr::Usec when = start;
  for (char c : text) {
    uint32_t key = c == '\n' ? kKeyNewline : static_cast<uint32_t>(c);
    keyboard_.PostAt(when, key);
    when += gap;
  }
}

void Editor::PressUndoAt(pcr::Usec when) { keyboard_.PostAt(when, kKeyUndo); }

void Editor::ClickRevertAt(pcr::Usec when) {
  paradigm::DelayedFork(runtime_, when - runtime_.now(), [this] {
    revert_button_->Click();
    pcr::thisthread::Sleep(400 * kMs);  // past the arming period
    revert_button_->Click();
  });
}

void Editor::RunMacro(std::string name) { macro_queue_.TryPut(std::move(name)); }

std::vector<std::string> Editor::Lines() {
  if (runtime_.scheduler().current() == pcr::kNoThread) {
    return lines_;
  }
  pcr::MonitorGuard guard(doc_lock_);
  return lines_;
}

std::string Editor::FirstLine() {
  if (runtime_.scheduler().current() == pcr::kNoThread) {
    return lines_.front();
  }
  pcr::MonitorGuard guard(doc_lock_);
  return lines_.front();
}

}  // namespace apps
