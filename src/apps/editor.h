// A miniature interactive text editor built entirely on the public pcr/paradigm API — the kind
// of Cedar application the paper's thread census is full of. It exists to prove the library
// composes: one downstream component using, at once,
//
//   * a monitored document record (Section 2's data-associated locking variant),
//   * the keystroke pipeline: interrupt source -> edit-applier pump -> repaint slack process,
//   * deferred work for spellchecking ("defer work" — Section 4.1),
//   * an autosave sleeper whose disk writes go through a worker pool,
//   * an undo log, a guarded "revert all" button (one-shots — Section 4.3),
//   * a task-rejuvenating macro engine (Section 4.5), and
//   * an adaptive timeout for the mock file-server RPC (Section 5.5 future work).

#ifndef SRC_APPS_EDITOR_H_
#define SRC_APPS_EDITOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/paradigm/adaptive_timeout.h"
#include "src/paradigm/bounded_buffer.h"
#include "src/paradigm/one_shot.h"
#include "src/paradigm/rejuvenate.h"
#include "src/paradigm/slack_process.h"
#include "src/paradigm/sleeper.h"
#include "src/paradigm/work_queue.h"
#include "src/pcr/interrupt.h"
#include "src/pcr/runtime.h"
#include "src/world/xserver.h"

namespace apps {

// Key codes above the printable range.
inline constexpr uint32_t kKeyNewline = 0x100;
inline constexpr uint32_t kKeyUndo = 0x101;

struct EditorStats {
  int64_t keystrokes = 0;
  int64_t edits_applied = 0;
  int64_t undos = 0;
  int64_t autosaves = 0;
  int64_t save_retries = 0;       // RPC timeouts the adaptive controller absorbed
  int64_t spellcheck_passes = 0;
  int64_t suspect_words = 0;      // "misspellings" flagged by the toy checker
  int64_t macro_crashes = 0;      // macro-engine rejuvenations
  int64_t reverts = 0;            // guarded-button confirmed reverts
};

class Editor {
 public:
  // `file_server_latency` simulates the remote filesystem the autosave talks to; the adaptive
  // timeout has to track it.
  Editor(pcr::Runtime& runtime, world::XServerModel& xserver,
         pcr::Usec file_server_latency = 3 * pcr::kUsecPerMsec);
  ~Editor();

  Editor(const Editor&) = delete;
  Editor& operator=(const Editor&) = delete;

  // Scripts `text` as keystrokes starting at `start`, `rate` characters/second. '\n' becomes
  // the newline key. Callable from the host before running.
  void TypeText(std::string_view text, pcr::Usec start, double rate);

  // Presses the undo key at `when`.
  void PressUndoAt(pcr::Usec when);

  // Clicks the guarded revert-document button at `when` (twice, correctly spaced, confirms).
  void ClickRevertAt(pcr::Usec when);

  // Runs a named macro on the macro engine; "crash" deliberately fails (rejuvenation demo),
  // "upcase" upcases the first line.
  void RunMacro(std::string name);

  // Snapshot of the document (host or fiber context; takes the document monitor when running).
  std::vector<std::string> Lines();
  std::string FirstLine();
  int64_t version() const { return version_; }
  const EditorStats& stats() const { return stats_; }

  pcr::InterruptSource& keyboard() { return keyboard_; }

 private:
  struct EditOp {
    uint32_t key;
    pcr::Usec pressed_at;
  };

  void StartEditThread();
  void StartRepaint();
  void StartAutosave();
  void StartMacroEngine();
  void ApplyKey(uint32_t key, pcr::Usec pressed_at);
  void ApplyUndo();
  void SpellcheckWord(std::string word);
  void SaveSnapshot(std::vector<std::string> snapshot);

  pcr::Runtime& runtime_;
  world::XServerModel& xserver_;
  pcr::Usec file_server_latency_;

  pcr::InterruptSource keyboard_;
  paradigm::BoundedBuffer<EditOp> edits_;

  // The document: a monitored record.
  pcr::MonitorLock doc_lock_;
  std::vector<std::string> lines_{1};
  std::vector<std::vector<std::string>> undo_log_;
  int64_t version_ = 0;
  std::string current_word_;

  std::unique_ptr<paradigm::SlackProcess<world::PaintRequest>> repaint_;
  std::unique_ptr<paradigm::Sleeper> autosave_;
  std::unique_ptr<paradigm::WorkQueue> background_;
  std::unique_ptr<paradigm::GuardedButton> revert_button_;
  std::unique_ptr<paradigm::RejuvenatingTask> macro_engine_;
  paradigm::BoundedBuffer<std::string> macro_queue_;
  paradigm::AdaptiveTimeout save_timeout_;

  EditorStats stats_;
};

}  // namespace apps

#endif  // SRC_APPS_EDITOR_H_
