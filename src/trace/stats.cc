#include "src/trace/stats.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace trace {

namespace {

// Per-processor run tracking used to turn kSwitch events into execution intervals.
struct ProcessorRun {
  ThreadId thread = 0;
  uint32_t thread_sym = 0;
  uint8_t priority = 0;
  Usec since = 0;
};

}  // namespace

Summary Summarize(const Tracer& tracer, const StatsOptions& options) {
  Usec begin = options.window_begin;
  Usec end = options.window_end;
  if (end <= begin) {
    end = tracer.retained() == 0 ? begin : tracer.last_time();
  }

  Summary s;
  s.window_us = end - begin;
  s.exec_intervals = Histogram(options.interval_bucket_us, options.interval_buckets);

  std::set<ObjectId> cvs;
  std::set<ObjectId> mls;
  std::map<uint16_t, ProcessorRun> runs;
  std::map<ThreadId, std::pair<Usec, uint32_t>> cpu_by_thread;  // cpu time, name symbol
  int live = 0;

  auto account_run = [&](const ProcessorRun& run, Usec until) {
    Usec from = std::max(run.since, begin);
    Usec to = std::min(until, end);
    if (to <= from) {
      return;
    }
    Usec span = to - from;
    if (run.thread == 0) {
      s.idle_time_us += span;
      return;
    }
    s.busy_time_us += span;
    auto& per_thread = cpu_by_thread[run.thread];
    per_thread.first += span;
    per_thread.second = run.thread_sym;
    if (run.priority < s.cpu_time_by_priority.size()) {
      s.cpu_time_by_priority[run.priority] += span;
    }
    // Execution intervals are measured switch-to-switch; clamping to the window keeps partial
    // boundary runs from polluting the distribution only when the window cut them.
    s.exec_intervals.Add(span);
  };

  for (const Event& e : tracer.view()) {
    if (e.time_us >= end) {
      break;
    }
    bool in_window = e.time_us >= begin;

    switch (e.type) {
      case EventType::kThreadFork:
        ++live;
        if (live > s.max_live_threads) {
          s.max_live_threads = live;
        }
        if (in_window) {
          ++s.forks;
        }
        break;
      case EventType::kThreadExit:
        --live;
        break;
      case EventType::kSwitch: {
        ProcessorRun& run = runs[e.processor];
        account_run(run, e.time_us);
        if (in_window && e.thread != 0) {
          // Switches *to* a thread. A park-to-idle is not a thread switch; the later
          // idle-to-thread dispatch counts as the one switch, matching how the paper's
          // switch rates relate to its wait rates.
          ++s.switches;
        }
        run.thread = e.thread;
        run.thread_sym = e.thread_sym;
        run.priority = e.priority;
        run.since = e.time_us;
        break;
      }
      case EventType::kPreempt:
        if (in_window) {
          ++s.preemptions;
        }
        break;
      case EventType::kMlEnter:
        if (in_window) {
          ++s.ml_enters;
          mls.insert(e.object);
        }
        break;
      case EventType::kMlContend:
        if (in_window) {
          ++s.ml_contentions;
        }
        break;
      case EventType::kCvWait:
        if (in_window) {
          cvs.insert(e.object);
        }
        break;
      case EventType::kCvTimeout:
        if (in_window) {
          ++s.cv_waits;
          ++s.cv_timeouts;
        }
        break;
      case EventType::kCvNotified:
        if (in_window) {
          ++s.cv_waits;
        }
        break;
      case EventType::kCvNotify:
        if (in_window) {
          ++s.notifies;
        }
        break;
      case EventType::kCvBroadcast:
        if (in_window) {
          ++s.broadcasts;
        }
        break;
      case EventType::kSpuriousConflict:
        if (in_window) {
          ++s.spurious_conflicts;
        }
        break;
      case EventType::kYield:
      case EventType::kYieldButNotToMe:
      case EventType::kDirectedYield:
        if (in_window) {
          ++s.yields;
        }
        break;
      case EventType::kInterrupt:
        if (in_window) {
          ++s.interrupts;
        }
        break;
      default:
        break;
    }
  }
  // Close out runs still open at window end.
  for (auto& [proc, run] : runs) {
    account_run(run, end);
  }

  s.distinct_cvs = static_cast<int64_t>(cvs.size());
  s.distinct_mls = static_cast<int64_t>(mls.size());

  for (const auto& [tid, cpu] : cpu_by_thread) {
    s.busiest_threads.push_back(
        {tid, std::string(tracer.symbols().Name(cpu.second)), cpu.first});
  }
  std::sort(s.busiest_threads.begin(), s.busiest_threads.end(),
            [](const Summary::ThreadTime& a, const Summary::ThreadTime& b) {
              return a.cpu_us != b.cpu_us ? a.cpu_us > b.cpu_us : a.thread < b.thread;
            });
  if (s.busiest_threads.size() > static_cast<size_t>(Summary::kBusiestThreads)) {
    s.busiest_threads.resize(Summary::kBusiestThreads);
  }

  double seconds = static_cast<double>(s.window_us) / 1e6;
  if (seconds > 0) {
    s.forks_per_sec = static_cast<double>(s.forks) / seconds;
    s.switches_per_sec = static_cast<double>(s.switches) / seconds;
    s.waits_per_sec = static_cast<double>(s.cv_waits) / seconds;
    s.ml_enters_per_sec = static_cast<double>(s.ml_enters) / seconds;
  }
  if (s.cv_waits > 0) {
    s.timeout_fraction = static_cast<double>(s.cv_timeouts) / static_cast<double>(s.cv_waits);
  }
  if (s.ml_enters > 0) {
    s.contention_fraction =
        static_cast<double>(s.ml_contentions) / static_cast<double>(s.ml_enters);
  }
  return s;
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "window=" << window_us / 1000 << "ms"
     << " forks/s=" << forks_per_sec << " switches/s=" << switches_per_sec
     << " waits/s=" << waits_per_sec << " timeout%=" << timeout_fraction * 100
     << " ml-enters/s=" << ml_enters_per_sec << " contention%=" << contention_fraction * 100
     << " #cv=" << distinct_cvs << " #ml=" << distinct_mls
     << " max-threads=" << max_live_threads;
  return os.str();
}

}  // namespace trace
