// Fork genealogy and thread lifetime classification.
//
// Section 3 classifies dynamic threads into eternal, worker and transient, and reports the fork
// generation structure: "every transient thread was either the child or grandchild of some
// worker or long-lived thread" — i.e. no transient forking chains deeper than 2. This module
// recovers both classifications from fork/exit trace events.

#ifndef SRC_TRACE_GENEALOGY_H_
#define SRC_TRACE_GENEALOGY_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/trace/event.h"
#include "src/trace/tracer.h"

namespace trace {

enum class ThreadClass : uint8_t {
  kEternal,    // alive at the end of the run with a long lifetime
  kWorker,     // completed, but lived a long time (>= worker_threshold)
  kTransient,  // completed quickly
};

struct ThreadRecord {
  ThreadId id = 0;
  ThreadId parent = 0;
  Usec forked_at = 0;
  Usec exited_at = -1;  // -1: still alive at end of trace
  ThreadClass thread_class = ThreadClass::kTransient;
  // Fork generation counted from the nearest eternal/worker ancestor: a transient forked by a
  // worker is generation 1; a transient forked by that transient is generation 2.
  int generation = 0;
};

struct GenealogyOptions {
  // Threads that complete in under this live span are transient (paper: "well under 1 second").
  Usec transient_threshold_us = 1'000'000;
};

struct GenealogySummary {
  int64_t eternal = 0;
  int64_t workers = 0;
  int64_t transients = 0;
  int max_transient_generation = 0;  // paper: never exceeds 2
  Usec mean_transient_lifetime_us = 0;
  std::map<ThreadId, ThreadRecord> threads;

  std::string ToString() const;
};

GenealogySummary AnalyzeGenealogy(const Tracer& tracer, const GenealogyOptions& options = {});

}  // namespace trace

#endif  // SRC_TRACE_GENEALOGY_H_
