// Segmented in-memory event log.
//
// The tracer is the runtime's only measurement channel. Events are recorded into fixed-size
// recycled segments of 24-byte packed records (delta-encoded times, narrowed ids) instead of
// one unbounded vector of 40-byte Events: the hot path is a handful of stores into the tail
// segment, segment allocations are reused through a freelist (and donatable across runs via
// Take/AdoptEventBuffer, which the explorer uses to recycle arenas between schedules), and
// three retention modes fall out of the same structure:
//
//   * buffered (default)  — every segment is retained; view() walks the whole log.
//   * ring (flight recorder, set_ring_limit) — whole segments are evicted from the front once
//     more than the limit is retained, keeping at least the last N events at bounded memory;
//     evicted events are counted in dropped() and reported by Dump.
//   * streaming (set_sink) — sealed segments are decoded into an EventSink and recycled
//     immediately, so arbitrarily long runs hold at most one segment in memory.
//
// Ring and streaming modes discard history and are never combined with checkpoint/restore
// (src/pcr/checkpoint.cc), which rewinds the log with TruncateTo and assumes the retained
// prefix starts at index 0.
//
// Consumers iterate decoded Events through the cursor API (view(), view(from)); the packed
// encoding is an internal detail. Statistics (stats.h) are computed post-hoc over a
// [begin, end) window so that benchmarks can exclude warm-up.

#ifndef SRC_TRACE_TRACER_H_
#define SRC_TRACE_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "src/trace/event.h"
#include "src/trace/symbol.h"

namespace trace {

// Destination for events folded out of the log as segments seal (streaming export). Consume is
// called once per event, in record order; the tracer never calls it re-entrantly.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Consume(const Event& event) = 0;
};

namespace internal {

// Flag bit in PackedEvent::type_flags: the record did not fit the narrow encoding and the full
// Event is stored in the segment's wide table, indexed by the packed object field.
inline constexpr uint8_t kWideFlag = 0x80;
static_assert(static_cast<uint8_t>(EventType::kWatchdogReport) < kWideFlag,
              "EventType must fit beside the wide flag");

// Events per segment: 1024 * 24 B ~= 24 KiB of records, matching the old tracer's initial
// capacity so small runs still pay exactly one block allocation.
inline constexpr size_t kSegmentCapacity = 1024;

// 24-byte packed record. Times are delta-encoded against the previous record in the segment
// (the first record's dt_us is 0 and its time is the segment's base_time); ids are narrowed to
// the widths real runs use. Records that cannot narrow — a 64-bit object/arg (kRngSeed carries
// the full seed) or a symbol id past 16 bits — escape to the segment's wide table.
struct PackedEvent {
  uint32_t dt_us = 0;
  uint8_t type_flags = 0;  // EventType, plus kWideFlag
  uint8_t priority = 0;
  uint16_t processor = 0;
  uint32_t thread = 0;
  uint32_t object = 0;  // narrowed ObjectId, or the wide-table index when kWideFlag is set
  uint32_t arg = 0;
  uint16_t thread_sym = 0;
  uint16_t object_sym = 0;
};
static_assert(sizeof(PackedEvent) == 24, "packed record layout");

// One fixed-size chunk of the log. Segments are sealed (and a new one opened) when full or
// when a time delta does not fit 32 bits — event times are only per-processor monotone, so a
// hand-built trace can step backwards globally; a reset of base_time absorbs any jump.
struct Segment {
  Usec base_time = 0;      // time of records[0]
  Usec last_time = 0;      // time of records[count - 1]
  size_t first_index = 0;  // global index of records[0]
  uint32_t count = 0;
  std::vector<Event> wide;  // full records for events that do not pack (rare)
  PackedEvent records[kSegmentCapacity];

  void Reset(size_t first) {
    base_time = 0;
    last_time = 0;
    first_index = first;
    count = 0;
    wide.clear();
  }

  // Decodes records[i]. `prev_time` is the decoded time of records[i - 1] (base_time for
  // i == 0; dt_us is 0 there, so the first record decodes to base_time exactly).
  Event Decode(uint32_t i, Usec prev_time) const {
    const PackedEvent& r = records[i];
    if (r.type_flags & kWideFlag) {
      return wide[r.object];
    }
    Event e;
    e.time_us = prev_time + r.dt_us;
    e.type = static_cast<EventType>(r.type_flags);
    e.priority = r.priority;
    e.processor = r.processor;
    e.thread = r.thread;
    e.object = r.object;
    e.arg = r.arg;
    e.thread_sym = r.thread_sym;
    e.object_sym = r.object_sym;
    return e;
  }
};

using SegmentList = std::vector<std::unique_ptr<Segment>>;

}  // namespace internal

// Forward cursor over decoded events. Dereferencing yields the reassembled Event; index() is
// the event's global position in the log (indices are stable across ring eviction and
// streaming: they count every event ever recorded, so diagnostics can say "event #N" even
// when earlier events are gone).
class EventCursor {
 public:
  EventCursor() = default;  // the end sentinel

  const Event& operator*() const { return current_; }
  const Event* operator->() const { return &current_; }
  size_t index() const { return index_; }

  EventCursor& operator++() {
    Advance();
    return *this;
  }
  bool operator==(const EventCursor& other) const { return remaining_ == other.remaining_; }
  bool operator!=(const EventCursor& other) const { return remaining_ != other.remaining_; }

 private:
  friend class Tracer;
  friend class EventRange;

  void Advance() {
    if (--remaining_ == 0) {
      return;
    }
    const internal::SegmentList& segments = *segments_;
    prev_time_ = current_.time_us;
    if (++pos_ == segments[seg_]->count) {
      ++seg_;
      pos_ = 0;
      prev_time_ = segments[seg_]->base_time;
    }
    ++index_;
    current_ = segments[seg_]->Decode(pos_, prev_time_);
  }

  const internal::SegmentList* segments_ = nullptr;
  size_t seg_ = 0;
  uint32_t pos_ = 0;
  size_t remaining_ = 0;  // events left including the current one; 0 == end
  size_t index_ = 0;
  Usec prev_time_ = 0;
  Event current_;
};

// Range over [from, size()) returned by Tracer::view; supports range-for.
class EventRange {
 public:
  EventRange() = default;
  explicit EventRange(EventCursor begin) : begin_(begin) {}
  EventCursor begin() const { return begin_; }
  EventCursor end() const { return EventCursor(); }
  size_t size() const { return begin_.remaining_; }
  bool empty() const { return size() == 0; }

 private:
  EventCursor begin_;
};

// A detached pile of segment allocations, handed around by Take/AdoptEventBuffer so harnesses
// that build one Tracer per run (the explorer runs tens of thousands of schedules) can recycle
// capacity. Only allocations travel, never event data.
struct SegmentArena {
  internal::SegmentList segments;
};

class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Enables or disables recording. Disabled tracers drop events (counters in the runtime that
  // do not depend on the tracer keep working).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(const Event& event) {
    if (!enabled_) {
      return;
    }
    internal::Segment* seg = tail_;
    if (seg == nullptr) {
      RecordSlow(event);
      return;
    }
    // One unsigned compare catches both a backwards step (huge after the cast) and a forward
    // jump past 32 bits; either seals the segment in the slow path.
    uint64_t dt =
        static_cast<uint64_t>(event.time_us) - static_cast<uint64_t>(seg->last_time);
    if (seg->count == internal::kSegmentCapacity || dt > 0xffffffffull ||
        (event.object | event.arg) > 0xffffffffull ||
        ((event.thread_sym | event.object_sym) >> 16) != 0) {
      RecordSlow(event);
      return;
    }
    internal::PackedEvent& r = seg->records[seg->count++];
    r.dt_us = static_cast<uint32_t>(dt);
    r.type_flags = static_cast<uint8_t>(event.type);
    r.priority = event.priority;
    r.processor = event.processor;
    r.thread = event.thread;
    r.object = static_cast<uint32_t>(event.object);
    r.arg = static_cast<uint32_t>(event.arg);
    r.thread_sym = static_cast<uint16_t>(event.thread_sym);
    r.object_sym = static_cast<uint16_t>(event.object_sym);
    seg->last_time = event.time_us;
    ++size_;
  }

  // ---- Accounting ----
  //
  // size() counts every event ever recorded (the next event's global index); it is monotone
  // and unaffected by ring eviction or streaming, so checkpoint arithmetic over event counts
  // keeps working. dropped()/streamed() say where the missing prefix went; what view() can
  // still iterate is retained(), starting at global index first_retained().

  size_t size() const { return size_; }
  size_t dropped() const { return dropped_; }
  size_t streamed() const { return streamed_; }
  size_t first_retained() const { return dropped_ + streamed_; }
  size_t retained() const { return size_ - first_retained(); }
  // Time of the most recent retained event; 0 when retained() == 0.
  Usec last_time() const { return tail_ != nullptr ? tail_->last_time : 0; }

  // ---- Iteration ----

  // All retained events, in record order.
  EventRange view() const { return view(first_retained()); }
  // Retained events with global index >= from (clamped to the retained range). Locating the
  // start is a binary search over segments plus a decode of at most one segment prefix.
  EventRange view(size_t from) const;
  // Materializes the retained events as a contiguous vector, for random-access consumers.
  std::vector<Event> CopyEvents() const;

  // ---- Retention modes ----

  // Flight recorder: retain at least the last `limit` events, evicting whole segments from
  // the front past that (so up to one segment more may survive). 0 = unbounded (default).
  void set_ring_limit(size_t limit) { ring_limit_ = limit; }
  size_t ring_limit() const { return ring_limit_; }

  // Streaming: decode each segment into `sink` as it seals and recycle it. FlushSink folds
  // the open tail too (call once at end of run, before reading the sink's output). Not owned.
  void set_sink(EventSink* sink) { sink_ = sink; }
  void FlushSink();

  // ---- Rewind / reset ----

  // Drops every event at index >= n (checkpoint restore rewinds the log to the snapshot
  // point; whole segments past n are recycled, the one containing n is trimmed in place).
  // `n` must not exceed size(); requires the retained prefix to start at 0 (no ring/stream).
  void TruncateTo(size_t n);

  // Drops all events and resets the measurement window, keeping the symbol table: the runtime
  // caches interned ids (in Tcbs, monitors, CVs), so symbols must stay valid across a mid-run
  // Clear. Segment allocations are kept on the freelist.
  void Clear();

  // Capacity recycling across runs: Take hands every segment allocation (live and free) to
  // the caller, leaving the log empty; Adopt installs donated allocations on the freelist and
  // resets the log (events, counters, and the measurement window — never data). Recycled and
  // fresh tracers are observationally identical.
  SegmentArena TakeEventBuffer();
  void AdoptEventBuffer(SegmentArena arena);

  // Interned thread/object names referenced by Event::thread_sym / object_sym.
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // Marks the logical start of the measurement window. Stats helpers use this to skip warm-up
  // events without copying the buffer.
  void MarkWindowStart(Usec now) { window_start_ = now; }
  Usec window_start() const { return window_start_; }

  // Writes a human-readable dump of events in [from_us, to_us) to `os`, at most `limit` lines.
  // Intended for debugging "100 millisecond event histories" the way the authors did. When the
  // ring (or a sink) has discarded events, the dump says so up front instead of pretending the
  // log starts at its first retained event.
  void Dump(std::ostream& os, Usec from_us, Usec to_us, size_t limit = 1000) const;

 private:
  // Slow half of Record: rolls to a fresh segment when the tail is missing, full, or the time
  // delta does not fit, and handles wide records. Out of line to keep the hot path small.
  void RecordSlow(const Event& event);
  internal::Segment* RollSegment();
  void DrainSegmentToSink(const internal::Segment& seg);
  std::unique_ptr<internal::Segment> NewSegment();
  void Recycle(std::unique_ptr<internal::Segment> seg) {
    freelist_.push_back(std::move(seg));
  }

  bool enabled_ = true;
  Usec window_start_ = 0;
  internal::SegmentList segments_;   // retained log, oldest first
  internal::SegmentList freelist_;   // recycled allocations
  internal::Segment* tail_ = nullptr;  // == segments_.back(); never empty outside RecordSlow
  size_t size_ = 0;
  size_t dropped_ = 0;
  size_t streamed_ = 0;
  size_t ring_limit_ = 0;
  EventSink* sink_ = nullptr;
  SymbolTable symbols_;
};

}  // namespace trace

#endif  // SRC_TRACE_TRACER_H_
