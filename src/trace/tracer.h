// In-memory event tracer.
//
// The tracer is the runtime's only measurement channel: it stores every Event in arrival order
// (virtual time is monotone, so the buffer is sorted by construction). Statistics (stats.h) are
// computed post-hoc over a [begin, end) window so that benchmarks can exclude warm-up.

#ifndef SRC_TRACE_TRACER_H_
#define SRC_TRACE_TRACER_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "src/trace/event.h"
#include "src/trace/symbol.h"

namespace trace {

class Tracer {
 public:
  Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Enables or disables recording. Disabled tracers drop events (counters in the runtime that
  // do not depend on the tracer keep working).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(const Event& event) {
    if (enabled_) {
      if (events_.size() == events_.capacity()) {
        // Explicit geometric growth with a meaningful floor: the first Record pays one block
        // allocation, after which the hot path is a bounds check and a 40-byte store.
        events_.reserve(events_.capacity() == 0 ? kInitialCapacity : events_.capacity() * 2);
      }
      events_.push_back(event);
    }
  }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  // Drops every event at index >= n (checkpoint restore rewinds the buffer to the snapshot
  // point; capacity is retained). `n` must not exceed size().
  void TruncateTo(size_t n) {
    if (n < events_.size()) {
      events_.resize(n);
    }
  }
  // Drops events but keeps the symbol table: the runtime caches interned ids (in Tcbs,
  // monitors, CVs), so symbols must stay valid across a mid-run Clear.
  void Clear() { events_.clear(); }

  // Capacity recycling for harnesses that build one Tracer per run (the explorer runs tens of
  // thousands of schedules): Take hands the event buffer — contents and capacity — to the
  // caller, Adopt installs a donated buffer after clearing its *contents*; its capacity is the
  // point. Only allocation is reused, never data, so recycled and fresh tracers are
  // observationally identical.
  std::vector<Event> TakeEventBuffer() { return std::move(events_); }
  void AdoptEventBuffer(std::vector<Event> buffer) {
    buffer.clear();
    events_ = std::move(buffer);
  }

  // Interned thread/object names referenced by Event::thread_sym / object_sym.
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // Marks the logical start of the measurement window. Stats helpers use this to skip warm-up
  // events without copying the buffer.
  void MarkWindowStart(Usec now) { window_start_ = now; }
  Usec window_start() const { return window_start_; }

  // Writes a human-readable dump of events in [from_us, to_us) to `os`, at most `limit` lines.
  // Intended for debugging "100 millisecond event histories" the way the authors did.
  void Dump(std::ostream& os, Usec from_us, Usec to_us, size_t limit = 1000) const;

 private:
  static constexpr size_t kInitialCapacity = 1024;

  bool enabled_ = true;
  Usec window_start_ = 0;
  std::vector<Event> events_;
  SymbolTable symbols_;
};

}  // namespace trace

#endif  // SRC_TRACE_TRACER_H_
