#include "src/trace/census.h"

namespace trace {

std::string_view ParadigmName(Paradigm paradigm) {
  switch (paradigm) {
    case Paradigm::kDeferWork:
      return "Defer work";
    case Paradigm::kGeneralPump:
      return "General pumps";
    case Paradigm::kSlackProcess:
      return "Slack processes";
    case Paradigm::kSleeper:
      return "Sleepers";
    case Paradigm::kOneShot:
      return "Oneshots";
    case Paradigm::kDeadlockAvoidance:
      return "Deadlock avoid";
    case Paradigm::kTaskRejuvenation:
      return "Task rejuvenate";
    case Paradigm::kSerializer:
      return "Serializers";
    case Paradigm::kEncapsulatedFork:
      return "Encapsulated fork";
    case Paradigm::kConcurrencyExploiter:
      return "Concurrency exploiters";
    case Paradigm::kUnknown:
      return "Unknown or other";
  }
  return "unknown";
}

}  // namespace trace
