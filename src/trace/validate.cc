#include "src/trace/validate.h"

#include <map>
#include <set>
#include <sstream>

namespace trace {

namespace {

void Error(ValidationResult* result, size_t index, const Event& e, const std::string& what) {
  if (result->errors.size() >= 20) {
    return;  // cap the report; one broken invariant tends to cascade
  }
  std::ostringstream os;
  os << "event #" << index << " t=" << e.time_us << "us thread=" << e.thread << " "
     << EventTypeName(e.type) << ": " << what;
  result->errors.push_back(os.str());
}

}  // namespace

ValidationResult ValidateTrace(const Tracer& tracer) {
  ValidationResult result;

  Usec last_time = 0;
  std::set<ThreadId> forked;
  std::set<ThreadId> exited;
  std::map<ObjectId, int64_t> monitor_balance;  // enters minus exits; never negative
  std::map<ThreadId, int> waits_begun;          // cv-wait vs completion balance

  const EventRange range = tracer.view();
  for (EventCursor c = range.begin(); c != range.end(); ++c) {
    const Event& e = *c;
    const size_t i = c.index();
    if (e.time_us < last_time) {
      Error(&result, i, e, "time went backwards");
    }
    last_time = e.time_us;

    // Acting threads must exist and not be finished (thread 0 = scheduler context is exempt).
    if (e.thread != 0 && e.type != EventType::kThreadFork && e.type != EventType::kSwitch) {
      if (exited.count(e.thread) != 0) {
        Error(&result, i, e, "action by an exited thread");
      }
    }

    switch (e.type) {
      case EventType::kThreadFork: {
        auto child = static_cast<ThreadId>(e.object);
        if (!forked.insert(child).second) {
          Error(&result, i, e, "thread id forked twice");
        }
        break;
      }
      case EventType::kThreadExit:
        if (e.thread != 0 && !exited.insert(e.thread).second) {
          Error(&result, i, e, "thread exited twice");
        }
        break;
      case EventType::kMlEnter:
        // kMlEnter is emitted at the start of Enter (the attempt), so enters can legitimately
        // run ahead of exits — but exits must never run ahead of enters.
        ++monitor_balance[e.object];
        break;
      case EventType::kMlExit:
        if (--monitor_balance[e.object] < 0) {
          Error(&result, i, e, "monitor exit without a matching enter");
          monitor_balance[e.object] = 0;
        }
        break;
      case EventType::kCvWait:
        ++waits_begun[e.thread];
        break;
      case EventType::kCvTimeout:
      case EventType::kCvNotified:
        if (--waits_begun[e.thread] < 0) {
          Error(&result, i, e, "wait completion without a matching WAIT");
          waits_begun[e.thread] = 0;
        }
        break;
      case EventType::kSwitch:
        if (e.thread != 0 && exited.count(e.thread) != 0) {
          Error(&result, i, e, "switch to an exited thread");
        }
        break;
      default:
        break;
    }

  }
  return result;
}

std::string ValidationResult::ToString() const {
  std::ostringstream os;
  for (const std::string& error : errors) {
    os << error << "\n";
  }
  return os.str();
}

}  // namespace trace
