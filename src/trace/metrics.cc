#include "src/trace/metrics.h"

#include <ostream>

#include "src/trace/json.h"

namespace trace {

void MetricsRegistry::Reset() {
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n" : ",\n") << "    ";
    WriteJsonString(os, name);
    os << ": " << counter.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "\n" : ",\n") << "    ";
    WriteJsonString(os, name);
    os << ": {\"count\": " << histogram.count() << ", \"sum\": " << histogram.sum()
       << ", \"max\": " << histogram.max() << ", \"buckets\": [";
    int last = -1;
    for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
      if (histogram.bucket_count(b) != 0) {
        last = b;
      }
    }
    for (int b = 0; b <= last; ++b) {
      os << (b == 0 ? "" : ", ") << histogram.bucket_count(b);
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

}  // namespace trace
