// Thread-event records emitted by the pcr runtime.
//
// The paper's methodology rests on "microsecond spacing between thread events": forks, yields,
// scheduler switches, monitor-lock entries and condition-variable waits (Section 1). Every
// scheduler-visible action in our runtime emits one Event into a Tracer; all of Tables 1-3 and
// the execution-interval histograms are computed from these records after a run.

#ifndef SRC_TRACE_EVENT_H_
#define SRC_TRACE_EVENT_H_

#include <cstdint>
#include <string_view>

namespace trace {

// Virtual time in microseconds.
using Usec = int64_t;

// Thread ids are runtime-assigned, monotonically increasing. Id 0 denotes "no thread" (an idle
// processor in switch events).
using ThreadId = uint32_t;

// Monitors, condition variables and other waitable objects get process-unique ids.
using ObjectId = uint64_t;

enum class EventType : uint8_t {
  kThreadFork,        // thread = parent, object = child id, arg = child priority
  kThreadStart,       // thread = child (first dispatch)
  kThreadExit,        // thread = exiting thread, arg = 1 if it died with an uncaught error
  kThreadJoin,        // thread = joiner, object = joined thread
  kThreadDetach,      // thread = detacher, object = detached thread
  kSwitch,            // processor's running thread changed; thread = incoming (0 = idle)
  kPreempt,           // thread preempted by a higher-priority wakeup; thread = victim
  kMlEnter,           // thread entered a monitor; object = monitor
  kMlContend,         // thread had to block for a monitor; object = monitor, arg = owner
  kMlExit,            // thread left a monitor; object = monitor
  kCvWait,            // thread began a WAIT; object = condition variable
  kCvTimeout,         // a WAIT completed by timeout; object = condition variable
  kCvNotified,        // a WAIT completed by NOTIFY/BROADCAST; object = condition variable
  kCvNotify,          // NOTIFY issued; object = condition variable, arg = #waiters woken
  kCvBroadcast,       // BROADCAST issued; object = condition variable, arg = #waiters woken
  kSpuriousConflict,  // notified thread immediately blocked on the notifier's monitor (6.1)
  kYield,             // explicit YIELD
  kYieldButNotToMe,   // the YieldButNotToMe primitive (5.2)
  kDirectedYield,     // directed yield; object = donee thread
  kSetPriority,       // thread changed its own priority; arg = new priority
  kInterrupt,         // external (device) event delivered; object = interrupt source
  kTimerFire,         // scheduler tick fired a timeout for this thread
  kSleep,             // thread began a timed sleep; arg = requested microseconds
  kUser,              // free-form workload annotation; object/arg are caller-defined
  kForcedPreempt,     // a SchedulePerturber forced a reschedule; arg = PreemptPoint
  kSharedRead,        // weakly-ordered shared read; object = cell id
  kSharedWrite,       // weakly-ordered shared write; object = cell id
  kRngSeed,           // first runtime RNG draw; arg = the seed (so repros capture randomness)
  kForkFailed,        // a FORK could not produce a thread; arg = ForkError cause
  kFaultInjected,     // a fault::Injector fired; object = FaultSite, arg = magnitude
  kMonitorPoisoned,   // a monitor's owner died without releasing it; object = monitor
  kWatchdogReport,    // the watchdog flagged a condition; object = report kind, arg = detail
};

// Human-readable name for an event type (for dumps and debugging).
std::string_view EventTypeName(EventType type);

// Named fault-injection sites. Lives in trace (not pcr) so the tracer can render
// kFaultInjected events without depending on the runtime layer above it.
enum class FaultSite : uint8_t {
  kFork,          // FORK fails outright (paper 5.4: "treated as a fatal error")
  kStackAcquire,  // fiber stack allocation fails / pool is at capacity pressure
  kNotifyLost,    // a NOTIFY evaporates: the waiter stays queued (5.3 missing-notify class)
  kNotifyDup,     // a NOTIFY wakes one extra waiter (exercises WAIT-in-loop discipline)
  kTimerSkew,     // a timeout fires late by N quanta (timeout-masked bug amplifier)
  kThreadDeath,   // the running fiber body throws InjectedFault (uncaught-exception path)
  kXDrop,         // the simulated X connection drops; sends fail until reconnect
  kXStall,        // the simulated X server stalls for N quanta before accepting a flush
  kShardStall,    // one service-world shard server wedges for N quanta mid-request
  kAdmissionReject,  // an admission controller force-rejects the offered request
};
inline constexpr int kNumFaultSites = 10;

// Short stable name used in fault-plan grammar and dumps (e.g. "notify-lost").
std::string_view FaultSiteName(FaultSite site);

struct Event {
  Usec time_us = 0;
  EventType type = EventType::kUser;
  uint8_t priority = 0;    // priority of the acting thread at event time
  uint16_t processor = 0;  // virtual processor the event happened on
  ThreadId thread = 0;     // acting thread (incoming thread for kSwitch)
  ObjectId object = 0;     // monitor / CV / peer-thread id, depending on type
  uint64_t arg = 0;        // extra per-type payload
  uint32_t thread_sym = 0;  // interned name of the acting thread (SymbolTable; 0 = anonymous)
  uint32_t object_sym = 0;  // interned name of the object, when it has one
};

}  // namespace trace

#endif  // SRC_TRACE_EVENT_H_
