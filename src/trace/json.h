// Tiny shared JSON primitives for the observability emitters (metrics snapshot, Chrome trace).
// Not a JSON library: just enough to write syntactically valid, deterministic output.

#ifndef SRC_TRACE_JSON_H_
#define SRC_TRACE_JSON_H_

#include <cstdio>
#include <ostream>
#include <string_view>

namespace trace {

// Writes `s` as a double-quoted JSON string. Metric and symbol names are programmer-chosen, but
// they flow in from workloads and may carry quotes, backslashes or control characters.
inline void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace trace

#endif  // SRC_TRACE_JSON_H_
