// Fixed-bucket histogram used for execution-interval distributions.
//
// Section 3 of the paper reports execution-interval distributions ("a peak at about 3
// milliseconds ... a second peak around 45 milliseconds") and the share of total execution time
// accumulated in 45-50 ms intervals. This histogram tracks both a count and a value-weighted
// total per bucket so both views come from one pass.

#ifndef SRC_TRACE_HISTOGRAM_H_
#define SRC_TRACE_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace trace {

class Histogram {
 public:
  // Buckets are [0, width), [width, 2*width), ..., plus a final overflow bucket.
  Histogram(int64_t bucket_width, int num_buckets)
      : width_(bucket_width > 0 ? bucket_width : 1), counts_(num_buckets + 1, 0),
        weights_(num_buckets + 1, 0) {}

  void Add(int64_t value) {
    size_t index = std::min<size_t>(static_cast<size_t>(value / width_), counts_.size() - 1);
    counts_[index] += 1;
    weights_[index] += value;
    total_count_ += 1;
    total_weight_ += value;
  }

  int64_t bucket_width() const { return width_; }
  // Number of regular buckets, excluding the overflow bucket.
  int num_buckets() const { return static_cast<int>(counts_.size()) - 1; }

  int64_t count(int bucket) const { return counts_[static_cast<size_t>(bucket)]; }
  int64_t weight(int bucket) const { return weights_[static_cast<size_t>(bucket)]; }
  int64_t overflow_count() const { return counts_.back(); }
  int64_t total_count() const { return total_count_; }
  int64_t total_weight() const { return total_weight_; }

  // Fraction of samples whose value fell in [lo, hi). Returns 0 when empty.
  double CountFraction(int64_t lo, int64_t hi) const {
    return total_count_ == 0 ? 0.0 : static_cast<double>(CountIn(lo, hi)) / total_count_;
  }

  // Fraction of total (value-weighted) mass in [lo, hi). Returns 0 when empty.
  double WeightFraction(int64_t lo, int64_t hi) const {
    return total_weight_ == 0 ? 0.0 : static_cast<double>(WeightIn(lo, hi)) / total_weight_;
  }

  // Value at or below which a fraction `p` (in [0, 1]) of the samples fall: the upper edge of
  // the first bucket where the cumulative count reaches p * total_count. The answer is
  // bucket-width granular (an upper bound on the true percentile); samples in the overflow
  // bucket resolve to the overflow boundary. Returns 0 when the histogram is empty. Used for
  // the load-study latency percentiles (p50/p99/p999 per request class, docs/WORLDS.md).
  int64_t Percentile(double p) const {
    if (total_count_ == 0) {
      return 0;
    }
    double need = p * static_cast<double>(total_count_);
    int64_t cumulative = 0;
    for (size_t b = 0; b + 1 < counts_.size(); ++b) {
      cumulative += counts_[b];
      if (static_cast<double>(cumulative) >= need) {
        return static_cast<int64_t>(b + 1) * width_;
      }
    }
    return static_cast<int64_t>(counts_.size() - 1) * width_;
  }

  // Bucket index with the highest count within [lo_bucket, hi_bucket]; -1 if all are empty.
  int PeakBucket(int lo_bucket, int hi_bucket) const {
    int best = -1;
    int64_t best_count = 0;
    for (int b = lo_bucket; b <= hi_bucket && b < num_buckets(); ++b) {
      if (counts_[static_cast<size_t>(b)] > best_count) {
        best_count = counts_[static_cast<size_t>(b)];
        best = b;
      }
    }
    return best;
  }

  // ASCII rendering, one line per bucket: "[lo,hi) count weight bar".
  std::string Render(int max_bar_width = 50) const;

 private:
  int64_t CountIn(int64_t lo, int64_t hi) const {
    int64_t total = 0;
    for (size_t b = 0; b + 1 < counts_.size(); ++b) {
      int64_t bucket_lo = static_cast<int64_t>(b) * width_;
      if (bucket_lo >= lo && bucket_lo < hi) {
        total += counts_[b];
      }
    }
    return total;
  }

  int64_t WeightIn(int64_t lo, int64_t hi) const {
    int64_t total = 0;
    for (size_t b = 0; b + 1 < weights_.size(); ++b) {
      int64_t bucket_lo = static_cast<int64_t>(b) * width_;
      if (bucket_lo >= lo && bucket_lo < hi) {
        total += weights_[b];
      }
    }
    return total;
  }

  int64_t width_;
  std::vector<int64_t> counts_;
  std::vector<int64_t> weights_;
  int64_t total_count_ = 0;
  int64_t total_weight_ = 0;
};

}  // namespace trace

#endif  // SRC_TRACE_HISTOGRAM_H_
