// Chrome Trace Event / Perfetto export.
//
// Serializes the event log as Chrome `trace_event` JSON so any run opens directly in
// ui.perfetto.dev (or chrome://tracing): one named track per thread showing its state
// intervals, one track per virtual processor showing which thread it ran, one track per
// monitor showing hold spans, plus instant markers for the paper's pathologies — notify /
// broadcast, preemption, YieldButNotToMe (Section 5.2) and spurious lock conflicts (Section
// 6.1). Virtual time maps 1:1 onto the format's microsecond `ts` field.
//
// The core is an *incremental* writer: ChromeTraceWriter consumes one event at a time
// (folding it through TimelineBuilder's observer mode) and emits each slice the moment it
// closes, holding only open spans and track registries in memory. Both the batch
// ExportChromeTrace and the streaming ChromeStreamSink drive the same writer with the same
// event sequence, so streamed output is byte-identical to the buffered export by
// construction — the invariant tools/ci_check.sh diffs end to end.
//
// Output is deterministic (fixed event order, fixed key order, one event per line) so golden
// tests can pin it byte-for-byte.

#ifndef SRC_TRACE_EXPORT_CHROME_H_
#define SRC_TRACE_EXPORT_CHROME_H_

#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>

#include "src/trace/tracer.h"

namespace trace {

// Incremental Chrome-trace serializer. Construction writes the document header; Push folds
// one event (emitting any spans it completes, and instant markers immediately); Finish closes
// spans still open at the last event's time, writes the track-name metadata, and terminates
// the document. Push events in record order; call Finish exactly once. Propagates
// TimelineError on a corrupt event stream. Memory is O(tracks + open spans), independent of
// trace length.
class ChromeTraceWriter {
 public:
  // `symbols` is read lazily at emission time, so it may keep growing while events stream in
  // (names are interned before any event references them). Not owned; must outlive Finish().
  ChromeTraceWriter(std::ostream& os, const SymbolTable& symbols);
  ~ChromeTraceWriter();

  void Push(const Event& event);
  void Finish();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Writes the full Chrome trace JSON document for `tracer`'s retained events to `os`.
void ExportChromeTrace(std::ostream& os, const Tracer& tracer);

// Convenience wrapper: ExportChromeTrace to `path`. Returns false if the file cannot be opened
// or written.
bool SaveChromeTraceFile(const std::string& path, const Tracer& tracer);

// Bounded-memory streaming export to a file. Attach to a tracer with set_sink before the run;
// sealed segments then fold straight to disk. After the run call Tracer::FlushSink() (pushes
// the open tail) and then Finish() here. The resulting file is byte-identical to
// SaveChromeTraceFile of an equivalent buffered run.
class ChromeStreamFile : public EventSink {
 public:
  ChromeStreamFile(const std::string& path, const SymbolTable& symbols);
  ~ChromeStreamFile() override;

  // False when the file could not be opened.
  bool ok() const { return static_cast<bool>(file_); }

  void Consume(const Event& event) override;

  // Terminates the document and closes the file; returns false on a write error.
  bool Finish();

 private:
  std::ofstream file_;
  std::unique_ptr<ChromeTraceWriter> writer_;
};

}  // namespace trace

#endif  // SRC_TRACE_EXPORT_CHROME_H_
