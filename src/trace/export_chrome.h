// Chrome Trace Event / Perfetto export.
//
// Serializes a reconstructed Timeline (intervals.h) as Chrome `trace_event` JSON so any run
// opens directly in ui.perfetto.dev (or chrome://tracing): one named track per thread showing
// its state intervals, one track per virtual processor showing which thread it ran, one track
// per monitor showing hold spans, plus instant markers for the paper's pathologies — notify /
// broadcast, preemption, YieldButNotToMe (Section 5.2) and spurious lock conflicts (Section
// 6.1). Virtual time maps 1:1 onto the format's microsecond `ts` field.
//
// Output is deterministic (fixed event order, fixed key order, one event per line) so golden
// tests can pin it byte-for-byte.

#ifndef SRC_TRACE_EXPORT_CHROME_H_
#define SRC_TRACE_EXPORT_CHROME_H_

#include <iosfwd>
#include <string>

#include "src/trace/tracer.h"

namespace trace {

// Writes the full Chrome trace JSON document for `tracer`'s buffer to `os`. Builds the interval
// timeline internally; propagates TimelineError on a corrupt event stream.
void ExportChromeTrace(std::ostream& os, const Tracer& tracer);

// Convenience wrapper: ExportChromeTrace to `path`. Returns false if the file cannot be opened
// or written.
bool SaveChromeTraceFile(const std::string& path, const Tracer& tracer);

}  // namespace trace

#endif  // SRC_TRACE_EXPORT_CHROME_H_
