#include "src/trace/intervals.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

namespace trace {

namespace {

// Mutable per-thread state while folding the event stream. Open spans live here (not in the
// accumulated Timeline) so the observer mode can deliver them at close time without ever
// growing a vector.
struct ThreadState {
  ThreadPhase phase = ThreadPhase::kReady;
  Usec phase_begin = 0;
  uint16_t processor = 0;
  int priority = 0;
  bool alive = true;
  bool wait_open = false;  // a blocked-monitor span is in flight
  MonitorWait wait;
  uint64_t wait_seq = 0;
  bool cv_open = false;  // a WAIT is in flight (survives re-dispatch: the completion event is
                         // emitted after the switch back in)
  CvWait cv;
  uint64_t cv_seq = 0;
};

// Mutable per-monitor state: who the model believes holds the lock, and since when.
struct MonitorState {
  ThreadId owner = 0;
  uint32_t sym = 0;
  Usec held_since = 0;
};

}  // namespace

void TimelineBuilder::SpanObserver::OnInterval(ThreadId, const ThreadInterval&) {}
void TimelineBuilder::SpanObserver::OnMonitorHold(const MonitorHold&) {}
void TimelineBuilder::SpanObserver::OnMonitorWait(const MonitorWait&) {}
void TimelineBuilder::SpanObserver::OnCvWait(const CvWait&) {}

class TimelineBuilder::Impl {
 public:
  explicit Impl(SpanObserver* observer) : observer_(observer) {}

  void Feed(const Event& e);
  Timeline Finish();

 private:
  ThreadState& Thread(ThreadId id) { return threads_[id]; }

  // Closes `id`'s open interval at `now` and opens a new one in `phase`. Zero-length intervals
  // contribute nothing and are dropped rather than emitted.
  void Transition(ThreadId id, ThreadPhase phase, Usec now, uint16_t processor = 0) {
    ThreadState& st = Thread(id);
    ClosePhase(id, st, now);
    st.phase = phase;
    st.phase_begin = now;
    st.processor = processor;
  }

  void ClosePhase(ThreadId id, ThreadState& st, Usec now) {
    if (now > st.phase_begin) {
      ThreadInterval interval{st.phase, st.phase_begin, now, st.processor};
      if (observer_ != nullptr) {
        observer_->OnInterval(id, interval);
      } else {
        intervals_[id].push_back(interval);
        residency_[id][static_cast<size_t>(st.phase)] += now - st.phase_begin;
      }
    }
  }

  void CloseHold(ObjectId monitor, MonitorState& ms, Usec now) {
    if (ms.owner != 0) {
      MonitorHold hold{monitor, ms.sym, ms.owner, ms.held_since, now};
      if (observer_ != nullptr) {
        observer_->OnMonitorHold(hold);
      } else {
        timeline_.monitor_holds.push_back(hold);
      }
      ms.owner = 0;
    }
  }

  // Waits and CV spans close out of open order, but the accumulated Timeline historically
  // lists them in open order — so each carries its open sequence number and the accumulate
  // path sorts by it in Finish.
  void CloseWait(ThreadState& st, Usec end) {
    st.wait.end = end;
    st.wait_open = false;
    if (observer_ != nullptr) {
      observer_->OnMonitorWait(st.wait);
    } else {
      waits_.emplace_back(st.wait_seq, st.wait);
    }
  }

  void CloseCv(ThreadState& st, Usec end, bool by_timeout, bool completed) {
    st.cv.end = end;
    st.cv.by_timeout = by_timeout;
    st.cv.completed = completed;
    st.cv_open = false;
    if (observer_ != nullptr) {
      observer_->OnCvWait(st.cv);
    } else {
      cvs_.emplace_back(st.cv_seq, st.cv);
    }
  }

  void NoteName(ThreadId id, uint32_t sym) {
    if (sym != 0 && names_.find(id) == names_.end()) {
      names_[id] = sym;
    }
  }

  SpanObserver* observer_;
  Timeline timeline_;
  size_t fed_ = 0;        // events folded so far (TimelineError index)
  uint64_t open_seq_ = 0; // open-order stamp for waits and CV spans
  std::vector<std::pair<uint64_t, MonitorWait>> waits_;
  std::vector<std::pair<uint64_t, CvWait>> cvs_;
  std::map<ThreadId, ThreadState> threads_;
  std::map<ThreadId, std::vector<ThreadInterval>> intervals_;
  std::map<ThreadId, std::array<Usec, kNumThreadPhases>> residency_;
  std::map<ThreadId, uint32_t> names_;
  std::map<ThreadId, Usec> born_;
  std::map<ThreadId, Usec> died_;
  std::map<ObjectId, MonitorState> monitors_;
  std::map<uint16_t, ThreadId> running_;  // processor -> dispatched thread
  std::map<uint16_t, Usec> last_time_;    // processor -> last event time (monotonicity)
};

void TimelineBuilder::Impl::Feed(const Event& e) {
  const Usec now = e.time_us;
  const size_t i = fed_++;
  if (i == 0) {
    timeline_.begin = now;
  }
  timeline_.end = now;

  // The tracer claims per-construction monotonicity; a violation means the log was corrupted
  // or hand-assembled wrong, and every interval after it would be garbage.
  auto [it, fresh] = last_time_.try_emplace(e.processor, now);
  if (!fresh) {
    if (now < it->second) {
      std::ostringstream msg;
      msg << "non-monotone event time on processor " << e.processor << ": event #" << i << " ("
          << EventTypeName(e.type) << ") at " << now << "us after " << it->second << "us";
      throw TimelineError(msg.str(), i);
    }
    it->second = now;
  }

  if (e.thread != 0) {
    ThreadState& st = Thread(e.thread);
    st.priority = e.priority;
    NoteName(e.thread, e.thread_sym);
    if (born_.find(e.thread) == born_.end()) {
      born_[e.thread] = now;  // first sighting of a thread never seen forked (e.g. main)
    }
  }

  switch (e.type) {
    case EventType::kThreadFork: {
      const ThreadId child = static_cast<ThreadId>(e.object);
      born_[child] = now;
      ThreadState& st = Thread(child);
      st.phase = ThreadPhase::kReady;
      st.phase_begin = now;
      st.priority = static_cast<int>(e.arg);
      break;
    }
    case EventType::kSwitch: {
      const ThreadId incoming = e.thread;
      const ThreadId outgoing = running_[e.processor];
      // The outgoing thread only becomes ready here if nothing already moved it elsewhere
      // (block, wait, sleep, exit and preempt all transition before the switch shows up).
      if (outgoing != 0 && outgoing != incoming) {
        ThreadState& out = Thread(outgoing);
        if (out.alive && out.phase == ThreadPhase::kRunning) {
          Transition(outgoing, ThreadPhase::kReady, now);
        }
      }
      running_[e.processor] = incoming;
      if (incoming != 0) {
        ThreadState& in = Thread(incoming);
        if (in.phase == ThreadPhase::kBlockedMonitor && in.wait_open) {
          // Dispatch is the first evidence the blocked thread owns the lock: complete the
          // wait span and start its hold.
          const ObjectId monitor = in.wait.monitor;
          const uint32_t monitor_sym = in.wait.monitor_sym;
          CloseWait(in, now);
          MonitorState& ms = monitors_[monitor];
          CloseHold(monitor, ms, now);
          ms.owner = incoming;
          ms.sym = monitor_sym;
          ms.held_since = now;
        }
        Transition(incoming, ThreadPhase::kRunning, now, e.processor);
      }
      break;
    }
    case EventType::kPreempt: {
      // Emitted from the host context: thread = 0, object = victim.
      const ThreadId victim = static_cast<ThreadId>(e.object);
      ThreadState& st = Thread(victim);
      if (st.alive && st.phase == ThreadPhase::kRunning) {
        Transition(victim, ThreadPhase::kReady, now);
      }
      break;
    }
    case EventType::kMlEnter: {
      // Emitted before acquisition; uncontended entry owns the lock at this same timestamp.
      // If a contend event follows it will correct the tentative claim.
      MonitorState& ms = monitors_[e.object];
      if (ms.owner == 0) {
        ms.owner = e.thread;
        ms.sym = e.object_sym;
        ms.held_since = now;
      }
      break;
    }
    case EventType::kMlContend: {
      const ThreadId owner = static_cast<ThreadId>(e.arg);
      MonitorState& ms = monitors_[e.object];
      if (ms.owner != owner) {
        // The runtime's arg is authoritative; the tentative kMlEnter claim (possibly by this
        // very waiter) was wrong.
        CloseHold(e.object, ms, now);
        ms.owner = owner;
        ms.sym = e.object_sym;
        ms.held_since = now;
      }
      ThreadState& st = Thread(e.thread);
      auto owner_it = threads_.find(owner);
      const int owner_priority = owner_it == threads_.end() ? 0 : owner_it->second.priority;
      st.wait = {e.object, e.object_sym, e.thread, owner, st.priority, owner_priority, now, now};
      st.wait_open = true;
      st.wait_seq = open_seq_++;
      Transition(e.thread, ThreadPhase::kBlockedMonitor, now);
      break;
    }
    case EventType::kMlExit: {
      MonitorState& ms = monitors_[e.object];
      if (ms.owner != 0 && ms.owner != e.thread) {
        // Model drift; trust the exit event over the reconstruction.
        ms.owner = e.thread;
      }
      if (ms.owner == 0) {
        ms.owner = e.thread;
        ms.held_since = now;
        ms.sym = e.object_sym;
      }
      CloseHold(e.object, ms, now);
      break;
    }
    case EventType::kCvWait: {
      ThreadState& st = Thread(e.thread);
      st.cv = {e.object, e.object_sym, e.thread, false, false, now, now};
      st.cv_open = true;
      st.cv_seq = open_seq_++;
      Transition(e.thread, ThreadPhase::kCvWaiting, now);
      break;
    }
    case EventType::kCvTimeout:
    case EventType::kCvNotified: {
      // Emitted after the waiter is re-dispatched, so its phase is already kRunning; only the
      // latency span needs completing.
      ThreadState& st = Thread(e.thread);
      if (st.cv_open) {
        CloseCv(st, now, /*by_timeout=*/e.type == EventType::kCvTimeout, /*completed=*/true);
      }
      break;
    }
    case EventType::kSleep: {
      Transition(e.thread, ThreadPhase::kSleeping, now);
      break;
    }
    case EventType::kTimerFire: {
      ThreadState& st = Thread(e.thread);
      if (st.phase == ThreadPhase::kSleeping || st.phase == ThreadPhase::kCvWaiting) {
        Transition(e.thread, ThreadPhase::kReady, now);
      }
      break;
    }
    case EventType::kThreadExit: {
      ThreadState& st = Thread(e.thread);
      ClosePhase(e.thread, st, now);
      st.alive = false;
      st.phase_begin = now;
      died_[e.thread] = now;
      break;
    }
    default:
      break;  // forks/joins/yields/user events carry no phase transition of their own
  }
}

Timeline TimelineBuilder::Impl::Finish() {
  // Trace over: close whatever is still open so residency accounts for the full window.
  for (auto& [id, st] : threads_) {
    if (st.alive) {
      ClosePhase(id, st, timeline_.end);
    }
    if (st.wait_open) {
      CloseWait(st, timeline_.end);
    }
    if (st.cv_open) {
      CloseCv(st, timeline_.end, st.cv.by_timeout, st.cv.completed);
    }
  }
  for (auto& [id, ms] : monitors_) {
    CloseHold(id, ms, timeline_.end);
  }
  if (observer_ != nullptr) {
    return std::move(timeline_);
  }

  for (auto& [id, st] : threads_) {
    ThreadTimeline tt;
    tt.id = id;
    auto name_it = names_.find(id);
    tt.name_sym = name_it == names_.end() ? 0 : name_it->second;
    tt.born = born_.count(id) != 0 ? born_[id] : timeline_.begin;
    tt.died = died_.count(id) != 0 ? died_[id] : -1;
    tt.intervals = std::move(intervals_[id]);
    tt.residency = residency_[id];
    timeline_.threads.push_back(std::move(tt));
  }
  std::sort(waits_.begin(), waits_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [seq, w] : waits_) {
    timeline_.monitor_waits.push_back(w);
  }
  std::sort(cvs_.begin(), cvs_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [seq, w] : cvs_) {
    timeline_.cv_waits.push_back(w);
  }
  std::sort(timeline_.monitor_holds.begin(), timeline_.monitor_holds.end(),
            [](const MonitorHold& a, const MonitorHold& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.monitor < b.monitor;
            });
  return std::move(timeline_);
}

TimelineBuilder::TimelineBuilder(SpanObserver* observer)
    : impl_(std::make_unique<Impl>(observer)) {}
TimelineBuilder::~TimelineBuilder() = default;
void TimelineBuilder::Feed(const Event& event) { impl_->Feed(event); }
Timeline TimelineBuilder::Finish() { return impl_->Finish(); }

std::string_view ThreadPhaseName(ThreadPhase phase) {
  switch (phase) {
    case ThreadPhase::kReady:
      return "ready";
    case ThreadPhase::kRunning:
      return "running";
    case ThreadPhase::kBlockedMonitor:
      return "blocked-monitor";
    case ThreadPhase::kCvWaiting:
      return "cv-waiting";
    case ThreadPhase::kSleeping:
      return "sleeping";
  }
  return "unknown";
}

const ThreadTimeline* Timeline::Find(ThreadId id) const {
  for (const ThreadTimeline& t : threads) {
    if (t.id == id) {
      return &t;
    }
  }
  return nullptr;
}

Timeline BuildTimeline(const Tracer& tracer) {
  TimelineBuilder builder;
  for (const Event& e : tracer.view()) {
    builder.Feed(e);
  }
  return builder.Finish();
}

std::vector<MonitorWait> FindPriorityInversions(const Timeline& timeline) {
  std::vector<MonitorWait> inversions;
  for (const MonitorWait& w : timeline.monitor_waits) {
    if (w.holder_priority != 0 && w.holder_priority < w.waiter_priority) {
      inversions.push_back(w);
    }
  }
  std::sort(inversions.begin(), inversions.end(),
            [](const MonitorWait& a, const MonitorWait& b) { return a.begin < b.begin; });
  return inversions;
}

}  // namespace trace
