#include "src/trace/intervals.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace trace {

namespace {

// Mutable per-thread state while folding the event stream.
struct ThreadState {
  ThreadPhase phase = ThreadPhase::kReady;
  Usec phase_begin = 0;
  uint16_t processor = 0;
  int priority = 0;
  bool alive = true;
  // Index into Timeline::monitor_waits of the still-open blocked span, or -1.
  int open_wait = -1;
  // Index into Timeline::cv_waits of the WAIT in flight (survives re-dispatch: the completion
  // event is emitted after the switch back in), or -1.
  int open_cv = -1;
};

// Mutable per-monitor state: who the model believes holds the lock, and since when.
struct MonitorState {
  ThreadId owner = 0;
  uint32_t sym = 0;
  Usec held_since = 0;
};

class Builder {
 public:
  explicit Builder(const Tracer& tracer) : tracer_(tracer) {}

  Timeline Build();

 private:
  ThreadState& Thread(ThreadId id) { return threads_[id]; }

  // Closes `id`'s open interval at `now` and opens a new one in `phase`. Zero-length intervals
  // contribute nothing and are dropped rather than emitted.
  void Transition(ThreadId id, ThreadPhase phase, Usec now, uint16_t processor = 0) {
    ThreadState& st = Thread(id);
    ClosePhase(id, st, now);
    st.phase = phase;
    st.phase_begin = now;
    st.processor = processor;
  }

  void ClosePhase(ThreadId id, ThreadState& st, Usec now) {
    if (now > st.phase_begin) {
      intervals_[id].push_back({st.phase, st.phase_begin, now, st.processor});
      residency_[id][static_cast<size_t>(st.phase)] += now - st.phase_begin;
    }
  }

  void CloseHold(ObjectId monitor, MonitorState& ms, Usec now) {
    if (ms.owner != 0) {
      timeline_.monitor_holds.push_back({monitor, ms.sym, ms.owner, ms.held_since, now});
      ms.owner = 0;
    }
  }

  void NoteName(ThreadId id, uint32_t sym) {
    if (sym != 0 && names_.find(id) == names_.end()) {
      names_[id] = sym;
    }
  }

  const Tracer& tracer_;
  Timeline timeline_;
  std::map<ThreadId, ThreadState> threads_;
  std::map<ThreadId, std::vector<ThreadInterval>> intervals_;
  std::map<ThreadId, std::array<Usec, kNumThreadPhases>> residency_;
  std::map<ThreadId, uint32_t> names_;
  std::map<ThreadId, Usec> born_;
  std::map<ThreadId, Usec> died_;
  std::map<ObjectId, MonitorState> monitors_;
  std::map<uint16_t, ThreadId> running_;     // processor -> dispatched thread
  std::map<uint16_t, Usec> last_time_;       // processor -> last event time (monotonicity)
};

Timeline Builder::Build() {
  const std::vector<Event>& events = tracer_.events();
  if (!events.empty()) {
    timeline_.begin = events.front().time_us;
    timeline_.end = events.back().time_us;
  }

  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    const Usec now = e.time_us;

    // The tracer claims per-construction monotonicity; a violation means the buffer was
    // corrupted or hand-assembled wrong, and every interval after it would be garbage.
    auto [it, fresh] = last_time_.try_emplace(e.processor, now);
    if (!fresh) {
      if (now < it->second) {
        std::ostringstream msg;
        msg << "non-monotone event time on processor " << e.processor << ": event #" << i << " ("
            << EventTypeName(e.type) << ") at " << now << "us after " << it->second << "us";
        throw TimelineError(msg.str(), i);
      }
      it->second = now;
    }

    if (e.thread != 0) {
      ThreadState& st = Thread(e.thread);
      st.priority = e.priority;
      NoteName(e.thread, e.thread_sym);
      if (born_.find(e.thread) == born_.end()) {
        born_[e.thread] = now;  // first sighting of a thread never seen forked (e.g. main)
      }
    }

    switch (e.type) {
      case EventType::kThreadFork: {
        const ThreadId child = static_cast<ThreadId>(e.object);
        born_[child] = now;
        ThreadState& st = Thread(child);
        st.phase = ThreadPhase::kReady;
        st.phase_begin = now;
        st.priority = static_cast<int>(e.arg);
        break;
      }
      case EventType::kSwitch: {
        const ThreadId incoming = e.thread;
        const ThreadId outgoing = running_[e.processor];
        // The outgoing thread only becomes ready here if nothing already moved it elsewhere
        // (block, wait, sleep, exit and preempt all transition before the switch shows up).
        if (outgoing != 0 && outgoing != incoming) {
          ThreadState& out = Thread(outgoing);
          if (out.alive && out.phase == ThreadPhase::kRunning) {
            Transition(outgoing, ThreadPhase::kReady, now);
          }
        }
        running_[e.processor] = incoming;
        if (incoming != 0) {
          ThreadState& in = Thread(incoming);
          if (in.phase == ThreadPhase::kBlockedMonitor && in.open_wait >= 0) {
            // Dispatch is the first evidence the blocked thread owns the lock: complete the
            // wait span and start its hold.
            MonitorWait& w = timeline_.monitor_waits[in.open_wait];
            w.end = now;
            in.open_wait = -1;
            MonitorState& ms = monitors_[w.monitor];
            CloseHold(w.monitor, ms, now);
            ms.owner = incoming;
            ms.sym = w.monitor_sym;
            ms.held_since = now;
          }
          Transition(incoming, ThreadPhase::kRunning, now, e.processor);
        }
        break;
      }
      case EventType::kPreempt: {
        // Emitted from the host context: thread = 0, object = victim.
        const ThreadId victim = static_cast<ThreadId>(e.object);
        ThreadState& st = Thread(victim);
        if (st.alive && st.phase == ThreadPhase::kRunning) {
          Transition(victim, ThreadPhase::kReady, now);
        }
        break;
      }
      case EventType::kMlEnter: {
        // Emitted before acquisition; uncontended entry owns the lock at this same timestamp.
        // If a contend event follows it will correct the tentative claim.
        MonitorState& ms = monitors_[e.object];
        if (ms.owner == 0) {
          ms.owner = e.thread;
          ms.sym = e.object_sym;
          ms.held_since = now;
        }
        break;
      }
      case EventType::kMlContend: {
        const ThreadId owner = static_cast<ThreadId>(e.arg);
        MonitorState& ms = monitors_[e.object];
        if (ms.owner != owner) {
          // The runtime's arg is authoritative; the tentative kMlEnter claim (possibly by this
          // very waiter) was wrong.
          CloseHold(e.object, ms, now);
          ms.owner = owner;
          ms.sym = e.object_sym;
          ms.held_since = now;
        }
        ThreadState& st = Thread(e.thread);
        auto owner_it = threads_.find(owner);
        const int owner_priority = owner_it == threads_.end() ? 0 : owner_it->second.priority;
        st.open_wait = static_cast<int>(timeline_.monitor_waits.size());
        timeline_.monitor_waits.push_back({e.object, e.object_sym, e.thread, owner, st.priority,
                                           owner_priority, now, now});
        Transition(e.thread, ThreadPhase::kBlockedMonitor, now);
        break;
      }
      case EventType::kMlExit: {
        MonitorState& ms = monitors_[e.object];
        if (ms.owner != 0 && ms.owner != e.thread) {
          // Model drift; trust the exit event over the reconstruction.
          ms.owner = e.thread;
        }
        if (ms.owner == 0) {
          ms.owner = e.thread;
          ms.held_since = now;
          ms.sym = e.object_sym;
        }
        CloseHold(e.object, ms, now);
        break;
      }
      case EventType::kCvWait: {
        ThreadState& st = Thread(e.thread);
        st.open_cv = static_cast<int>(timeline_.cv_waits.size());
        timeline_.cv_waits.push_back({e.object, e.object_sym, e.thread, false, false, now, now});
        Transition(e.thread, ThreadPhase::kCvWaiting, now);
        break;
      }
      case EventType::kCvTimeout:
      case EventType::kCvNotified: {
        // Emitted after the waiter is re-dispatched, so its phase is already kRunning; only the
        // latency span needs completing.
        ThreadState& st = Thread(e.thread);
        if (st.open_cv >= 0) {
          CvWait& w = timeline_.cv_waits[st.open_cv];
          w.end = now;
          w.by_timeout = e.type == EventType::kCvTimeout;
          w.completed = true;
          st.open_cv = -1;
        }
        break;
      }
      case EventType::kSleep: {
        Transition(e.thread, ThreadPhase::kSleeping, now);
        break;
      }
      case EventType::kTimerFire: {
        ThreadState& st = Thread(e.thread);
        if (st.phase == ThreadPhase::kSleeping || st.phase == ThreadPhase::kCvWaiting) {
          Transition(e.thread, ThreadPhase::kReady, now);
        }
        break;
      }
      case EventType::kThreadExit: {
        ThreadState& st = Thread(e.thread);
        ClosePhase(e.thread, st, now);
        st.alive = false;
        st.phase_begin = now;
        died_[e.thread] = now;
        break;
      }
      default:
        break;  // forks/joins/yields/user events carry no phase transition of their own
    }
  }

  // Trace over: close whatever is still open so residency accounts for the full window.
  for (auto& [id, st] : threads_) {
    if (st.alive) {
      ClosePhase(id, st, timeline_.end);
    }
    if (st.open_wait >= 0) {
      timeline_.monitor_waits[st.open_wait].end = timeline_.end;
    }
    if (st.open_cv >= 0) {
      timeline_.cv_waits[st.open_cv].end = timeline_.end;
    }
  }
  for (auto& [id, ms] : monitors_) {
    CloseHold(id, ms, timeline_.end);
  }

  for (auto& [id, st] : threads_) {
    ThreadTimeline tt;
    tt.id = id;
    auto name_it = names_.find(id);
    tt.name_sym = name_it == names_.end() ? 0 : name_it->second;
    tt.born = born_.count(id) != 0 ? born_[id] : timeline_.begin;
    tt.died = died_.count(id) != 0 ? died_[id] : -1;
    tt.intervals = std::move(intervals_[id]);
    tt.residency = residency_[id];
    timeline_.threads.push_back(std::move(tt));
  }
  std::sort(timeline_.monitor_holds.begin(), timeline_.monitor_holds.end(),
            [](const MonitorHold& a, const MonitorHold& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.monitor < b.monitor;
            });
  return std::move(timeline_);
}

}  // namespace

std::string_view ThreadPhaseName(ThreadPhase phase) {
  switch (phase) {
    case ThreadPhase::kReady:
      return "ready";
    case ThreadPhase::kRunning:
      return "running";
    case ThreadPhase::kBlockedMonitor:
      return "blocked-monitor";
    case ThreadPhase::kCvWaiting:
      return "cv-waiting";
    case ThreadPhase::kSleeping:
      return "sleeping";
  }
  return "unknown";
}

const ThreadTimeline* Timeline::Find(ThreadId id) const {
  for (const ThreadTimeline& t : threads) {
    if (t.id == id) {
      return &t;
    }
  }
  return nullptr;
}

Timeline BuildTimeline(const Tracer& tracer) { return Builder(tracer).Build(); }

std::vector<MonitorWait> FindPriorityInversions(const Timeline& timeline) {
  std::vector<MonitorWait> inversions;
  for (const MonitorWait& w : timeline.monitor_waits) {
    if (w.holder_priority != 0 && w.holder_priority < w.waiter_priority) {
      inversions.push_back(w);
    }
  }
  std::sort(inversions.begin(), inversions.end(),
            [](const MonitorWait& a, const MonitorWait& b) { return a.begin < b.begin; });
  return inversions;
}

}  // namespace trace
