// Post-hoc statistics over a trace window.
//
// Computes every metric reported in the paper's Tables 1-3 plus the in-text series:
//   Table 1: forks/sec and thread switches/sec.
//   Table 2: CV waits/sec, fraction of waits that timed out, monitor entries/sec (and, from the
//            surrounding text, the fraction of entries that contended).
//   Table 3: number of distinct condition variables and monitor locks used.
//   Section 3 prose: execution-interval distribution (bimodal: ~3 ms and ~quantum peaks), the
//            share of execution time in intervals of 45-50 ms, per-priority execution time, and
//            the maximum number of concurrently live threads.

#ifndef SRC_TRACE_STATS_H_
#define SRC_TRACE_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/event.h"
#include "src/trace/histogram.h"
#include "src/trace/tracer.h"

namespace trace {

struct StatsOptions {
  Usec window_begin = 0;
  Usec window_end = 0;  // exclusive; 0 means "through the last event"
  // Bucketing for the execution-interval histogram (defaults: 1 ms buckets up to 100 ms).
  Usec interval_bucket_us = 1000;
  int interval_buckets = 100;
};

struct Summary {
  Usec window_us = 0;

  // Table 1.
  int64_t forks = 0;
  int64_t switches = 0;
  double forks_per_sec = 0;
  double switches_per_sec = 0;

  // Table 2.
  int64_t cv_waits = 0;
  int64_t cv_timeouts = 0;
  int64_t ml_enters = 0;
  int64_t ml_contentions = 0;
  double waits_per_sec = 0;
  double timeout_fraction = 0;     // of completed waits, how many ended by timeout
  double ml_enters_per_sec = 0;
  double contention_fraction = 0;  // of monitor entries, how many blocked

  // Table 3.
  int64_t distinct_cvs = 0;
  int64_t distinct_mls = 0;

  // Section 3 / Section 6 extras.
  int64_t yields = 0;
  int64_t preemptions = 0;
  int64_t spurious_conflicts = 0;
  int64_t notifies = 0;
  int64_t broadcasts = 0;
  int64_t interrupts = 0;
  int max_live_threads = 0;
  Usec idle_time_us = 0;
  Usec busy_time_us = 0;
  std::array<Usec, 8> cpu_time_by_priority{};  // index 1..7; 0 unused

  // Execution intervals: time between thread switches attributed to the running thread.
  Histogram exec_intervals{1000, 100};

  // Threads with the most CPU time in the window, names resolved through the tracer's
  // SymbolTable. At most kBusiestThreads entries, busiest first (ties by thread id).
  struct ThreadTime {
    ThreadId thread = 0;
    std::string name;  // empty for anonymous threads
    Usec cpu_us = 0;
  };
  static constexpr int kBusiestThreads = 5;
  std::vector<ThreadTime> busiest_threads;

  // Convenience accessors for the paper's headline distribution claims.
  double FractionIntervalsUnder(Usec limit_us) const {
    return exec_intervals.CountFraction(0, limit_us);
  }
  double FractionTimeBetween(Usec lo_us, Usec hi_us) const {
    return exec_intervals.WeightFraction(lo_us, hi_us);
  }

  std::string ToString() const;
};

// Computes a Summary from the tracer's event buffer. Events before options.window_begin still
// contribute to live-thread tracking (a thread forked before the window can run inside it) but
// not to rate counters.
Summary Summarize(const Tracer& tracer, const StatsOptions& options = {});

}  // namespace trace

#endif  // SRC_TRACE_STATS_H_
