#include "src/trace/export_chrome.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/trace/intervals.h"
#include "src/trace/json.h"

namespace trace {

namespace {

// Synthetic process ids grouping the three track families in the Perfetto UI.
constexpr int kThreadsPid = 1;
constexpr int kProcessorsPid = 2;
constexpr int kMonitorsPid = 3;

std::string DisplayName(const SymbolTable& symbols, uint32_t sym, const char* prefix,
                        uint64_t id) {
  std::string_view name = symbols.Name(sym);
  if (!name.empty()) {
    return std::string(name);
  }
  return std::string(prefix) + std::to_string(id);
}

// One serialized trace event per line, comma-separated. Emitting through a single chokepoint
// keeps the key order fixed, which is what makes golden tests byte-stable.
class Emitter {
 public:
  explicit Emitter(std::ostream& os) : os_(os) {}

  std::ostream& Begin() {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    os_ << "{";
    return os_;
  }
  void End() { os_ << "}"; }

  void Metadata(int pid, int64_t tid, std::string_view key, std::string_view value) {
    Begin() << "\"name\": \"" << key << "\", \"ph\": \"M\", \"pid\": " << pid;
    if (tid >= 0) {
      os_ << ", \"tid\": " << tid;
    }
    os_ << ", \"args\": {\"name\": ";
    WriteJsonString(os_, value);
    os_ << "}";
    End();
  }

  // Opens a complete ("X") slice; the caller appends `, "args": {...}` via os() then End().
  std::ostream& Slice(std::string_view name, std::string_view cat, Usec ts, Usec dur, int pid,
                      int64_t tid) {
    Begin() << "\"name\": ";
    WriteJsonString(os_, name);
    os_ << ", \"cat\": \"" << cat << "\", \"ph\": \"X\", \"ts\": " << ts << ", \"dur\": " << dur
        << ", \"pid\": " << pid << ", \"tid\": " << tid;
    return os_;
  }

  // Opens a thread-scoped instant ("i") marker; same continuation contract as Slice.
  std::ostream& Instant(std::string_view name, Usec ts, int pid, int64_t tid) {
    Begin() << "\"name\": ";
    WriteJsonString(os_, name);
    os_ << ", \"cat\": \"marker\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << ts
        << ", \"pid\": " << pid << ", \"tid\": " << tid;
    return os_;
  }

  std::ostream& os() { return os_; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

// Consumes events one at a time: instants are emitted on the spot, state/occupancy/hold
// slices as TimelineBuilder closes them, track-name metadata at Finish (once the full track
// population is known). Perfetto orders by the `ts` field, not array position, so the
// close-time interleaving renders identically to the old batch layout.
class ChromeTraceWriter::Impl : public TimelineBuilder::SpanObserver {
 public:
  Impl(std::ostream& os, const SymbolTable& symbols)
      : out_(os), symbols_(symbols), builder_(this) {
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    out_.Metadata(kThreadsPid, -1, "process_name", "threads");
    out_.Metadata(kProcessorsPid, -1, "process_name", "processors");
    out_.Metadata(kMonitorsPid, -1, "process_name", "monitors");
  }

  void Push(const Event& e) {
    if (e.thread != 0) {
      NoteThread(e.thread, e.thread_sym);
    }
    if (e.type == EventType::kThreadFork) {
      NoteThread(static_cast<ThreadId>(e.object), 0);
    }
    builder_.Feed(e);
    EmitInstant(e);
  }

  void Finish() {
    builder_.Finish();  // closes open spans at the last event's time, via the callbacks below

    // Track names. Threads and processors are ordered by id; monitor tracks were assigned in
    // first-hold order and are emitted in that order.
    for (const auto& [tid, sym] : threads_) {
      out_.Metadata(kThreadsPid, tid, "thread_name", DisplayName(symbols_, sym, "thread-", tid));
    }
    for (uint16_t proc : processors_) {
      out_.Metadata(kProcessorsPid, proc, "thread_name", "cpu-" + std::to_string(proc));
    }
    std::vector<std::pair<int64_t, ObjectId>> tracks;
    for (const auto& [monitor, track] : monitor_track_) {
      tracks.emplace_back(track, monitor);
    }
    std::sort(tracks.begin(), tracks.end());
    for (const auto& [track, monitor] : tracks) {
      out_.Metadata(kMonitorsPid, track, "thread_name",
                    DisplayName(symbols_, monitor_sym_[monitor], "monitor-", monitor));
    }
    out_.os() << "\n]}\n";
  }

  // ---- TimelineBuilder::SpanObserver ----

  void OnInterval(ThreadId thread, const ThreadInterval& iv) override {
    out_.Slice(ThreadPhaseName(iv.phase), "state", iv.begin, iv.end - iv.begin, kThreadsPid,
               thread);
    if (iv.phase == ThreadPhase::kRunning) {
      out_.os() << ", \"args\": {\"processor\": " << iv.processor << "}";
    }
    out_.End();
    if (iv.phase == ThreadPhase::kRunning) {
      // Processor occupancy: the same interval, re-keyed by processor and labelled with the
      // thread that ran.
      processors_.insert(iv.processor);
      out_.Slice(ThreadDisplayName(thread), "run", iv.begin, iv.end - iv.begin, kProcessorsPid,
                 iv.processor);
      out_.os() << ", \"args\": {\"thread\": " << thread << "}";
      out_.End();
    }
  }

  void OnMonitorHold(const MonitorHold& h) override {
    auto [it, fresh] = monitor_track_.emplace(h.monitor, next_monitor_track_);
    if (fresh) {
      ++next_monitor_track_;
      monitor_sym_[h.monitor] = h.monitor_sym;
    }
    out_.Slice(ThreadDisplayName(h.holder), "hold", h.begin, h.end - h.begin, kMonitorsPid,
               it->second);
    out_.os() << ", \"args\": {\"holder\": " << h.holder << "}";
    out_.End();
  }

 private:
  void NoteThread(ThreadId tid, uint32_t sym) {
    auto [it, fresh] = threads_.emplace(tid, sym);
    if (!fresh && it->second == 0 && sym != 0) {
      it->second = sym;
    }
  }

  std::string ThreadDisplayName(ThreadId tid) {
    auto it = threads_.find(tid);
    return DisplayName(symbols_, it != threads_.end() ? it->second : 0, "thread-", tid);
  }

  // Instant markers for the pathologies the paper reads straight off event histories: notify
  // and broadcast fan-out, preemption, YieldButNotToMe (5.2), spurious conflicts (6.1), plus
  // fault-injection and watchdog markers so a failing fault x schedule repro shows its
  // injected faults inline with the schedule that exposed them.
  void EmitInstant(const Event& e) {
    switch (e.type) {
      case EventType::kCvNotify:
      case EventType::kCvBroadcast:
        out_.Instant(e.type == EventType::kCvNotify ? "notify" : "broadcast", e.time_us,
                     kThreadsPid, e.thread);
        out_.os() << ", \"args\": {\"cv\": ";
        WriteJsonString(out_.os(), DisplayName(symbols_, e.object_sym, "cv-", e.object));
        out_.os() << ", \"woken\": " << e.arg << "}";
        out_.End();
        break;
      case EventType::kPreempt:
        // Emitted from the host context (thread = 0); the victim rides in `object`, and the
        // marker belongs on the victim's track.
        out_.Instant("preempt", e.time_us, kThreadsPid, static_cast<int64_t>(e.object));
        out_.End();
        break;
      case EventType::kYieldButNotToMe:
        out_.Instant("yield-but-not-to-me", e.time_us, kThreadsPid, e.thread);
        out_.End();
        break;
      case EventType::kSpuriousConflict:
        out_.Instant("spurious-conflict", e.time_us, kThreadsPid, e.thread);
        out_.os() << ", \"args\": {\"monitor\": ";
        WriteJsonString(out_.os(), DisplayName(symbols_, e.object_sym, "monitor-", e.object));
        out_.os() << "}";
        out_.End();
        break;
      case EventType::kFaultInjected:
        out_.Instant(std::string("fault:") +
                         std::string(FaultSiteName(static_cast<FaultSite>(e.object))),
                     e.time_us, kThreadsPid, e.thread);
        out_.os() << ", \"args\": {\"value\": " << e.arg << "}";
        out_.End();
        break;
      case EventType::kForkFailed:
        out_.Instant("fork-failed", e.time_us, kThreadsPid, e.thread);
        out_.os() << ", \"args\": {\"cause\": " << e.arg << "}";
        out_.End();
        break;
      case EventType::kMonitorPoisoned:
        out_.Instant("monitor-poisoned", e.time_us, kThreadsPid, e.thread);
        out_.os() << ", \"args\": {\"monitor\": ";
        WriteJsonString(out_.os(), DisplayName(symbols_, e.object_sym, "monitor-", e.object));
        out_.os() << "}";
        out_.End();
        break;
      case EventType::kWatchdogReport:
        out_.Instant("watchdog-report", e.time_us, kThreadsPid,
                     static_cast<int64_t>(e.arg));  // arg = first implicated thread
        out_.os() << ", \"args\": {\"kind\": " << e.object << "}";
        out_.End();
        break;
      default:
        break;
    }
  }

  Emitter out_;
  const SymbolTable& symbols_;
  TimelineBuilder builder_;
  std::map<ThreadId, uint32_t> threads_;  // id -> first non-zero name symbol
  std::set<uint16_t> processors_;
  std::map<ObjectId, int64_t> monitor_track_;
  std::map<ObjectId, uint32_t> monitor_sym_;
  int64_t next_monitor_track_ = 1;
};

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os, const SymbolTable& symbols)
    : impl_(std::make_unique<Impl>(os, symbols)) {}
ChromeTraceWriter::~ChromeTraceWriter() = default;
void ChromeTraceWriter::Push(const Event& event) { impl_->Push(event); }
void ChromeTraceWriter::Finish() { impl_->Finish(); }

void ExportChromeTrace(std::ostream& os, const Tracer& tracer) {
  ChromeTraceWriter writer(os, tracer.symbols());
  for (const Event& e : tracer.view()) {
    writer.Push(e);
  }
  writer.Finish();
}

bool SaveChromeTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  ExportChromeTrace(file, tracer);
  return file.good();
}

ChromeStreamFile::ChromeStreamFile(const std::string& path, const SymbolTable& symbols)
    : file_(path) {
  if (file_) {
    writer_ = std::make_unique<ChromeTraceWriter>(file_, symbols);
  }
}

ChromeStreamFile::~ChromeStreamFile() = default;

void ChromeStreamFile::Consume(const Event& event) {
  if (writer_ != nullptr) {
    writer_->Push(event);
  }
}

bool ChromeStreamFile::Finish() {
  if (writer_ == nullptr) {
    return false;
  }
  writer_->Finish();
  writer_.reset();
  file_.close();
  return file_.good();
}

}  // namespace trace
