#include "src/trace/export_chrome.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/trace/intervals.h"
#include "src/trace/json.h"

namespace trace {

namespace {

// Synthetic process ids grouping the three track families in the Perfetto UI.
constexpr int kThreadsPid = 1;
constexpr int kProcessorsPid = 2;
constexpr int kMonitorsPid = 3;

std::string DisplayName(const SymbolTable& symbols, uint32_t sym, const char* prefix,
                        uint64_t id) {
  std::string_view name = symbols.Name(sym);
  if (!name.empty()) {
    return std::string(name);
  }
  return std::string(prefix) + std::to_string(id);
}

// One serialized trace event per line, comma-separated. Emitting through a single chokepoint
// keeps the key order fixed, which is what makes golden tests byte-stable.
class Emitter {
 public:
  explicit Emitter(std::ostream& os) : os_(os) {}

  std::ostream& Begin() {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    os_ << "{";
    return os_;
  }
  void End() { os_ << "}"; }

  void Metadata(int pid, int64_t tid, std::string_view key, std::string_view value) {
    Begin() << "\"name\": \"" << key << "\", \"ph\": \"M\", \"pid\": " << pid;
    if (tid >= 0) {
      os_ << ", \"tid\": " << tid;
    }
    os_ << ", \"args\": {\"name\": ";
    WriteJsonString(os_, value);
    os_ << "}";
    End();
  }

  // Opens a complete ("X") slice; the caller appends `, "args": {...}` via os() then End().
  std::ostream& Slice(std::string_view name, std::string_view cat, Usec ts, Usec dur, int pid,
                      int64_t tid) {
    Begin() << "\"name\": ";
    WriteJsonString(os_, name);
    os_ << ", \"cat\": \"" << cat << "\", \"ph\": \"X\", \"ts\": " << ts << ", \"dur\": " << dur
        << ", \"pid\": " << pid << ", \"tid\": " << tid;
    return os_;
  }

  // Opens a thread-scoped instant ("i") marker; same continuation contract as Slice.
  std::ostream& Instant(std::string_view name, Usec ts, int pid, int64_t tid) {
    Begin() << "\"name\": ";
    WriteJsonString(os_, name);
    os_ << ", \"cat\": \"marker\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << ts
        << ", \"pid\": " << pid << ", \"tid\": " << tid;
    return os_;
  }

  std::ostream& os() { return os_; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void ExportChromeTrace(std::ostream& os, const Tracer& tracer) {
  const Timeline timeline = BuildTimeline(tracer);
  const SymbolTable& symbols = tracer.symbols();
  Emitter out(os);

  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";

  out.Metadata(kThreadsPid, -1, "process_name", "threads");
  out.Metadata(kProcessorsPid, -1, "process_name", "processors");
  out.Metadata(kMonitorsPid, -1, "process_name", "monitors");

  // Track names. Threads are already sorted by id; processors and monitors are collected into
  // ordered maps so the metadata block is stable.
  std::map<uint16_t, bool> processors;
  for (const ThreadTimeline& t : timeline.threads) {
    out.Metadata(kThreadsPid, t.id, "thread_name",
                 DisplayName(symbols, t.name_sym, "thread-", t.id));
    for (const ThreadInterval& iv : t.intervals) {
      if (iv.phase == ThreadPhase::kRunning) {
        processors[iv.processor] = true;
      }
    }
  }
  for (const auto& [proc, unused] : processors) {
    out.Metadata(kProcessorsPid, proc, "thread_name", "cpu-" + std::to_string(proc));
  }
  // Monitor object ids are process-unique 64-bit values; give each a small stable track id.
  std::map<ObjectId, int64_t> monitor_track;
  std::map<ObjectId, uint32_t> monitor_sym;
  for (const MonitorHold& h : timeline.monitor_holds) {
    if (monitor_track.emplace(h.monitor, 0).second) {
      monitor_sym[h.monitor] = h.monitor_sym;
    }
  }
  {
    int64_t next = 1;
    for (auto& [id, track] : monitor_track) {
      track = next++;
      out.Metadata(kMonitorsPid, track, "thread_name",
                   DisplayName(symbols, monitor_sym[id], "monitor-", id));
    }
  }

  // Per-thread state slices, chronological within each track.
  for (const ThreadTimeline& t : timeline.threads) {
    for (const ThreadInterval& iv : t.intervals) {
      out.Slice(ThreadPhaseName(iv.phase), "state", iv.begin, iv.end - iv.begin, kThreadsPid,
                t.id);
      if (iv.phase == ThreadPhase::kRunning) {
        out.os() << ", \"args\": {\"processor\": " << iv.processor << "}";
      }
      out.End();
    }
  }

  // Processor occupancy: the same running intervals, re-keyed by processor and labelled with
  // the thread that ran.
  struct ProcSlice {
    Usec begin;
    Usec end;
    uint16_t processor;
    ThreadId thread;
    uint32_t name_sym;
  };
  std::vector<ProcSlice> proc_slices;
  for (const ThreadTimeline& t : timeline.threads) {
    for (const ThreadInterval& iv : t.intervals) {
      if (iv.phase == ThreadPhase::kRunning) {
        proc_slices.push_back({iv.begin, iv.end, iv.processor, t.id, t.name_sym});
      }
    }
  }
  std::sort(proc_slices.begin(), proc_slices.end(), [](const ProcSlice& a, const ProcSlice& b) {
    return a.begin != b.begin ? a.begin < b.begin
                              : (a.processor != b.processor ? a.processor < b.processor
                                                            : a.thread < b.thread);
  });
  for (const ProcSlice& s : proc_slices) {
    out.Slice(DisplayName(symbols, s.name_sym, "thread-", s.thread), "run", s.begin,
              s.end - s.begin, kProcessorsPid, s.processor);
    out.os() << ", \"args\": {\"thread\": " << s.thread << "}";
    out.End();
  }

  // Monitor hold spans, labelled with the holding thread.
  for (const MonitorHold& h : timeline.monitor_holds) {
    const ThreadTimeline* holder = timeline.Find(h.holder);
    out.Slice(DisplayName(symbols, holder != nullptr ? holder->name_sym : 0, "thread-",
                          h.holder),
              "hold", h.begin, h.end - h.begin, kMonitorsPid, monitor_track[h.monitor]);
    out.os() << ", \"args\": {\"holder\": " << h.holder << "}";
    out.End();
  }

  // Instant markers for the pathologies the paper reads straight off event histories: notify
  // and broadcast fan-out, preemption, YieldButNotToMe (5.2), spurious conflicts (6.1).
  for (const Event& e : tracer.events()) {
    switch (e.type) {
      case EventType::kCvNotify:
      case EventType::kCvBroadcast:
        out.Instant(e.type == EventType::kCvNotify ? "notify" : "broadcast", e.time_us,
                    kThreadsPid, e.thread);
        out.os() << ", \"args\": {\"cv\": ";
        WriteJsonString(out.os(), DisplayName(symbols, e.object_sym, "cv-", e.object));
        out.os() << ", \"woken\": " << e.arg << "}";
        out.End();
        break;
      case EventType::kPreempt:
        // Emitted from the host context (thread = 0); the victim rides in `object`, and the
        // marker belongs on the victim's track.
        out.Instant("preempt", e.time_us, kThreadsPid, static_cast<int64_t>(e.object));
        out.End();
        break;
      case EventType::kYieldButNotToMe:
        out.Instant("yield-but-not-to-me", e.time_us, kThreadsPid, e.thread);
        out.End();
        break;
      case EventType::kSpuriousConflict:
        out.Instant("spurious-conflict", e.time_us, kThreadsPid, e.thread);
        out.os() << ", \"args\": {\"monitor\": ";
        WriteJsonString(out.os(), DisplayName(symbols, e.object_sym, "monitor-", e.object));
        out.os() << "}";
        out.End();
        break;
      // Fault-injection and watchdog instants, so a failing fault x schedule repro shows its
      // injected faults inline with the schedule that exposed them.
      case EventType::kFaultInjected:
        out.Instant(std::string("fault:") +
                        std::string(FaultSiteName(static_cast<FaultSite>(e.object))),
                    e.time_us, kThreadsPid, e.thread);
        out.os() << ", \"args\": {\"value\": " << e.arg << "}";
        out.End();
        break;
      case EventType::kForkFailed:
        out.Instant("fork-failed", e.time_us, kThreadsPid, e.thread);
        out.os() << ", \"args\": {\"cause\": " << e.arg << "}";
        out.End();
        break;
      case EventType::kMonitorPoisoned:
        out.Instant("monitor-poisoned", e.time_us, kThreadsPid, e.thread);
        out.os() << ", \"args\": {\"monitor\": ";
        WriteJsonString(out.os(), DisplayName(symbols, e.object_sym, "monitor-", e.object));
        out.os() << "}";
        out.End();
        break;
      case EventType::kWatchdogReport:
        out.Instant("watchdog-report", e.time_us, kThreadsPid,
                    static_cast<int64_t>(e.arg));  // arg = first implicated thread
        out.os() << ", \"args\": {\"kind\": " << e.object << "}";
        out.End();
        break;
      default:
        break;
    }
  }

  os << "\n]}\n";
}

bool SaveChromeTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  ExportChromeTrace(file, tracer);
  return file.good();
}

}  // namespace trace
