#include "src/trace/genealogy.h"

#include <sstream>

namespace trace {

GenealogySummary AnalyzeGenealogy(const Tracer& tracer, const GenealogyOptions& options) {
  GenealogySummary g;
  Usec trace_end = tracer.last_time();

  for (const Event& e : tracer.view()) {
    if (e.type == EventType::kThreadFork) {
      ThreadRecord rec;
      rec.id = static_cast<ThreadId>(e.object);
      rec.parent = e.thread;
      rec.forked_at = e.time_us;
      g.threads[rec.id] = rec;
    } else if (e.type == EventType::kThreadExit) {
      auto it = g.threads.find(e.thread);
      if (it != g.threads.end()) {
        it->second.exited_at = e.time_us;
      }
    }
  }

  // Classify by lifetime. Threads alive at trace end are eternal; completed threads are
  // transient or worker by threshold.
  Usec transient_total = 0;
  for (auto& [id, rec] : g.threads) {
    if (rec.exited_at < 0) {
      rec.thread_class = ThreadClass::kEternal;
      ++g.eternal;
      (void)trace_end;
    } else if (rec.exited_at - rec.forked_at < options.transient_threshold_us) {
      rec.thread_class = ThreadClass::kTransient;
      ++g.transients;
      transient_total += rec.exited_at - rec.forked_at;
    } else {
      rec.thread_class = ThreadClass::kWorker;
      ++g.workers;
    }
  }
  if (g.transients > 0) {
    g.mean_transient_lifetime_us = transient_total / g.transients;
  }

  // Generation: walk parent chains; transient children of eternal/worker (or of the host, id 0)
  // are generation 1, their transient children generation 2, etc.
  for (auto& [id, rec] : g.threads) {
    if (rec.thread_class != ThreadClass::kTransient) {
      rec.generation = 0;
      continue;
    }
    int generation = 1;
    ThreadId parent = rec.parent;
    while (parent != 0) {
      auto it = g.threads.find(parent);
      if (it == g.threads.end() || it->second.thread_class != ThreadClass::kTransient) {
        break;
      }
      ++generation;
      parent = it->second.parent;
    }
    rec.generation = generation;
    if (generation > g.max_transient_generation) {
      g.max_transient_generation = generation;
    }
  }
  return g;
}

std::string GenealogySummary::ToString() const {
  std::ostringstream os;
  os << "eternal=" << eternal << " workers=" << workers << " transients=" << transients
     << " max-generation=" << max_transient_generation
     << " mean-transient-life=" << mean_transient_lifetime_us << "us";
  return os.str();
}

}  // namespace trace
