// Static paradigm census (Table 4).
//
// The paper's Table 4 is a *static* count: the authors read ~650 thread-creating code fragments
// and classified each into one of ten paradigms. We reproduce the methodology rather than the
// corpus: every thread-creation site in our Cedar/GVX worlds registers itself here with a
// paradigm tag, and the Table 4 bench prints our census next to the paper's counts.

#ifndef SRC_TRACE_CENSUS_H_
#define SRC_TRACE_CENSUS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/symbol.h"

namespace trace {

enum class Paradigm : uint8_t {
  kDeferWork = 0,
  kGeneralPump,
  kSlackProcess,
  kSleeper,
  kOneShot,
  kDeadlockAvoidance,
  kTaskRejuvenation,
  kSerializer,
  kEncapsulatedFork,
  kConcurrencyExploiter,
  kUnknown,
};
inline constexpr int kNumParadigms = 11;

std::string_view ParadigmName(Paradigm paradigm);

class Census {
 public:
  // Registers one static thread-creation site. `site` should name the module and purpose, e.g.
  // "shell: keystroke worker".
  void Register(Paradigm paradigm, std::string_view site) {
    counts_[static_cast<size_t>(paradigm)] += 1;
    // Site names repeat every time a world is rebuilt; interning stores each string once and
    // the site list holds views into the table.
    sites_.push_back({paradigm, symbols_.Name(symbols_.Intern(site))});
  }

  int64_t count(Paradigm paradigm) const { return counts_[static_cast<size_t>(paradigm)]; }

  int64_t total() const {
    int64_t sum = 0;
    for (int64_t c : counts_) {
      sum += c;
    }
    return sum;
  }

  double fraction(Paradigm paradigm) const {
    int64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(count(paradigm)) / static_cast<double>(t);
  }

  struct Site {
    Paradigm paradigm;
    std::string_view name;  // view into the census's symbol table
  };
  const std::vector<Site>& sites() const { return sites_; }

  void Clear() {
    counts_.fill(0);
    sites_.clear();
    symbols_.Clear();
  }

 private:
  std::array<int64_t, kNumParadigms> counts_{};
  std::vector<Site> sites_;
  SymbolTable symbols_;
};

}  // namespace trace

#endif  // SRC_TRACE_CENSUS_H_
