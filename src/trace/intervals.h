// Interval reconstruction: fold the flat event log into per-thread state timelines.
//
// The paper's methodology is built on reading event histories as *timelines* — "the microsecond
// spacing between thread events" (Section 1), the 100 ms histories of Section 7 — but a flat
// dump makes the reader reconstruct thread states in their head. This pass does it once: every
// thread's life becomes a chronological sequence of intervals (ready / running /
// blocked-on-monitor / cv-waiting / sleeping), monitors get hold and contention spans, CVs get
// wait-latency spans, and per-thread residency totals fall out for free. The Chrome exporter
// (export_chrome.h) serializes exactly these intervals.
//
// Fidelity note: the runtime does not emit an event at every state change (a thread woken from
// a monitor queue becomes ready silently, for example), so some edges are resolved to the next
// observable event — a blocked interval ends at the wakeup evidence (timer-fire) when there is
// any, otherwise at the dispatch that proves the thread ran again. All residency totals are
// exact to within those event boundaries.

#ifndef SRC_TRACE_INTERVALS_H_
#define SRC_TRACE_INTERVALS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/event.h"
#include "src/trace/tracer.h"

namespace trace {

enum class ThreadPhase : uint8_t {
  kReady = 0,          // runnable, waiting for a processor
  kRunning,            // dispatched on a virtual processor
  kBlockedMonitor,     // blocked entering a monitor (kMlContend ... dispatch)
  kCvWaiting,          // in a condition-variable WAIT
  kSleeping,           // in a timed Sleep
};
inline constexpr int kNumThreadPhases = 5;

std::string_view ThreadPhaseName(ThreadPhase phase);

struct ThreadInterval {
  ThreadPhase phase = ThreadPhase::kReady;
  Usec begin = 0;
  Usec end = 0;
  uint16_t processor = 0;  // meaningful only for kRunning
};

// One thread's full reconstructed timeline.
struct ThreadTimeline {
  ThreadId id = 0;
  uint32_t name_sym = 0;                        // interned name (tracer.symbols())
  Usec born = 0;                                // fork (or first sighting) time
  Usec died = -1;                               // exit time; -1 = alive at trace end
  std::vector<ThreadInterval> intervals;        // chronological, non-overlapping
  std::array<Usec, kNumThreadPhases> residency{};  // total us per phase

  Usec ResidencyIn(ThreadPhase phase) const {
    return residency[static_cast<size_t>(phase)];
  }
};

// A span during which one thread held a monitor lock.
struct MonitorHold {
  ObjectId monitor = 0;
  uint32_t monitor_sym = 0;
  ThreadId holder = 0;
  Usec begin = 0;
  Usec end = 0;
};

// A span during which one thread was blocked entering a monitor. `holder` is the owner at the
// moment the waiter blocked; priorities are captured at that same moment, which is what makes
// these spans the raw material of the Section 6.2 priority-inversion analysis.
struct MonitorWait {
  ObjectId monitor = 0;
  uint32_t monitor_sym = 0;
  ThreadId waiter = 0;
  ThreadId holder = 0;
  int waiter_priority = 0;
  int holder_priority = 0;  // 0 = unknown (holder never acted in this trace)
  Usec begin = 0;
  Usec end = 0;
};

// One completed (or trace-end-truncated) condition-variable WAIT.
struct CvWait {
  ObjectId cv = 0;
  uint32_t cv_sym = 0;
  ThreadId waiter = 0;
  bool by_timeout = false;
  bool completed = false;  // false: still waiting when the trace ended
  Usec begin = 0;
  Usec end = 0;
};

struct Timeline {
  std::vector<ThreadTimeline> threads;  // ordered by thread id
  std::vector<MonitorHold> monitor_holds;
  std::vector<MonitorWait> monitor_waits;
  std::vector<CvWait> cv_waits;
  Usec begin = 0;
  Usec end = 0;

  const ThreadTimeline* Find(ThreadId id) const;
};

// Thrown by BuildTimeline when the event stream violates the invariant the tracer claims
// ("virtual time is monotone, so the buffer is sorted by construction", tracer.h): an event
// whose time is earlier than a previous event on the same processor. The offending event's
// buffer index makes the corruption diagnosable instead of silently producing negative-length
// intervals.
class TimelineError : public std::runtime_error {
 public:
  TimelineError(const std::string& message, size_t event_index)
      : std::runtime_error(message), event_index_(event_index) {}
  size_t event_index() const { return event_index_; }

 private:
  size_t event_index_;
};

// Incremental timeline fold: feed events one at a time, get completed spans as they close.
//
// Two modes share one fold:
//   * accumulate (no observer): Feed everything, then Finish() returns the full Timeline —
//     this is what BuildTimeline does.
//   * observer: completed spans are delivered through the SpanObserver as each one closes and
//     nothing is accumulated, so memory stays O(live threads + monitors) no matter how long
//     the trace is. The streaming Chrome exporter (export_chrome.h) is built on this.
//
// Open state (a thread's current phase, in-flight monitor/CV waits, current lock holders)
// lives inside the builder either way; Finish() closes it at the last event's time, exactly
// like the end-of-trace closure the batch fold always did. Spans are observed in *close*
// order; the accumulated Timeline keeps the historical orders (waits in open order, holds
// sorted by begin) so batch consumers see no change.
class TimelineBuilder {
 public:
  // Completed-span callbacks. Default implementations ignore the span.
  class SpanObserver {
   public:
    virtual ~SpanObserver() = default;
    // A thread finished one state interval (interval.processor is set for kRunning).
    virtual void OnInterval(ThreadId thread, const ThreadInterval& interval);
    virtual void OnMonitorHold(const MonitorHold& hold);
    virtual void OnMonitorWait(const MonitorWait& wait);
    virtual void OnCvWait(const CvWait& wait);
  };

  // With an observer the builder streams spans and accumulates nothing; without one it
  // accumulates a Timeline for Finish() to return.
  explicit TimelineBuilder(SpanObserver* observer = nullptr);
  ~TimelineBuilder();
  TimelineBuilder(const TimelineBuilder&) = delete;
  TimelineBuilder& operator=(const TimelineBuilder&) = delete;

  // Folds one event. Throws TimelineError on non-monotone per-processor times (the index in
  // the error counts events fed to this builder, starting at 0).
  void Feed(const Event& event);

  // Closes everything still open at the last fed event's time, delivers the final spans, and
  // returns the accumulated Timeline (empty in observer mode). Call at most once.
  Timeline Finish();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Folds the tracer's event log into a Timeline. Throws TimelineError on non-monotone
// per-processor event times.
Timeline BuildTimeline(const Tracer& tracer);

// Monitor-wait spans that are priority inversions: the blocked waiter outranks the thread
// holding the lock ("a long-running, low-priority thread was starving a high-priority thread by
// holding a lock", Section 6.2 in spirit). Sorted by begin time.
std::vector<MonitorWait> FindPriorityInversions(const Timeline& timeline);

}  // namespace trace

#endif  // SRC_TRACE_INTERVALS_H_
