#include "src/trace/tracer.h"

#include <iomanip>
#include <ostream>

namespace trace {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kThreadFork:
      return "fork";
    case EventType::kThreadStart:
      return "start";
    case EventType::kThreadExit:
      return "exit";
    case EventType::kThreadJoin:
      return "join";
    case EventType::kThreadDetach:
      return "detach";
    case EventType::kSwitch:
      return "switch";
    case EventType::kPreempt:
      return "preempt";
    case EventType::kMlEnter:
      return "ml-enter";
    case EventType::kMlContend:
      return "ml-contend";
    case EventType::kMlExit:
      return "ml-exit";
    case EventType::kCvWait:
      return "cv-wait";
    case EventType::kCvTimeout:
      return "cv-timeout";
    case EventType::kCvNotified:
      return "cv-notified";
    case EventType::kCvNotify:
      return "cv-notify";
    case EventType::kCvBroadcast:
      return "cv-broadcast";
    case EventType::kSpuriousConflict:
      return "spurious-conflict";
    case EventType::kYield:
      return "yield";
    case EventType::kYieldButNotToMe:
      return "yield-but-not-to-me";
    case EventType::kDirectedYield:
      return "directed-yield";
    case EventType::kSetPriority:
      return "set-priority";
    case EventType::kInterrupt:
      return "interrupt";
    case EventType::kTimerFire:
      return "timer-fire";
    case EventType::kSleep:
      return "sleep";
    case EventType::kUser:
      return "user";
    case EventType::kForcedPreempt:
      return "forced-preempt";
    case EventType::kSharedRead:
      return "shared-read";
    case EventType::kSharedWrite:
      return "shared-write";
    case EventType::kRngSeed:
      return "rng-seed";
    case EventType::kForkFailed:
      return "fork-failed";
    case EventType::kFaultInjected:
      return "fault-injected";
    case EventType::kMonitorPoisoned:
      return "monitor-poisoned";
    case EventType::kWatchdogReport:
      return "watchdog-report";
  }
  return "unknown";
}

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kFork:
      return "fork";
    case FaultSite::kStackAcquire:
      return "stack-acquire";
    case FaultSite::kNotifyLost:
      return "notify-lost";
    case FaultSite::kNotifyDup:
      return "notify-dup";
    case FaultSite::kTimerSkew:
      return "timer-skew";
    case FaultSite::kThreadDeath:
      return "thread-death";
    case FaultSite::kXDrop:
      return "x-drop";
    case FaultSite::kXStall:
      return "x-stall";
  }
  return "unknown";
}

void Tracer::Dump(std::ostream& os, Usec from_us, Usec to_us, size_t limit) const {
  size_t emitted = 0;
  size_t suppressed = 0;
  for (const Event& e : events_) {
    if (e.time_us < from_us) {
      continue;
    }
    if (e.time_us >= to_us) {
      break;
    }
    if (emitted >= limit) {
      // Keep scanning so the marker can say exactly how much of the window was cut off.
      ++suppressed;
      continue;
    }
    os << std::setw(12) << e.time_us << "us p" << e.processor << " t" << e.thread;
    if (std::string_view name = symbols_.Name(e.thread_sym); !name.empty()) {
      os << "(" << name << ")";
    }
    os << " pri" << static_cast<int>(e.priority) << " " << EventTypeName(e.type);
    if (e.object != 0) {
      os << " obj=" << e.object;
      if (std::string_view name = symbols_.Name(e.object_sym); !name.empty()) {
        os << "(" << name << ")";
      }
    }
    if (e.arg != 0) {
      os << " arg=" << e.arg;
    }
    os << "\n";
    ++emitted;
  }
  if (suppressed > 0) {
    os << "... truncated (" << suppressed << " more events)\n";
  }
}

}  // namespace trace
