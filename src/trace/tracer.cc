#include "src/trace/tracer.h"

#include <iomanip>
#include <ostream>

namespace trace {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kThreadFork:
      return "fork";
    case EventType::kThreadStart:
      return "start";
    case EventType::kThreadExit:
      return "exit";
    case EventType::kThreadJoin:
      return "join";
    case EventType::kThreadDetach:
      return "detach";
    case EventType::kSwitch:
      return "switch";
    case EventType::kPreempt:
      return "preempt";
    case EventType::kMlEnter:
      return "ml-enter";
    case EventType::kMlContend:
      return "ml-contend";
    case EventType::kMlExit:
      return "ml-exit";
    case EventType::kCvWait:
      return "cv-wait";
    case EventType::kCvTimeout:
      return "cv-timeout";
    case EventType::kCvNotified:
      return "cv-notified";
    case EventType::kCvNotify:
      return "cv-notify";
    case EventType::kCvBroadcast:
      return "cv-broadcast";
    case EventType::kSpuriousConflict:
      return "spurious-conflict";
    case EventType::kYield:
      return "yield";
    case EventType::kYieldButNotToMe:
      return "yield-but-not-to-me";
    case EventType::kDirectedYield:
      return "directed-yield";
    case EventType::kSetPriority:
      return "set-priority";
    case EventType::kInterrupt:
      return "interrupt";
    case EventType::kTimerFire:
      return "timer-fire";
    case EventType::kSleep:
      return "sleep";
    case EventType::kUser:
      return "user";
    case EventType::kForcedPreempt:
      return "forced-preempt";
    case EventType::kSharedRead:
      return "shared-read";
    case EventType::kSharedWrite:
      return "shared-write";
    case EventType::kRngSeed:
      return "rng-seed";
    case EventType::kForkFailed:
      return "fork-failed";
    case EventType::kFaultInjected:
      return "fault-injected";
    case EventType::kMonitorPoisoned:
      return "monitor-poisoned";
    case EventType::kWatchdogReport:
      return "watchdog-report";
  }
  return "unknown";
}

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kFork:
      return "fork";
    case FaultSite::kStackAcquire:
      return "stack-acquire";
    case FaultSite::kNotifyLost:
      return "notify-lost";
    case FaultSite::kNotifyDup:
      return "notify-dup";
    case FaultSite::kTimerSkew:
      return "timer-skew";
    case FaultSite::kThreadDeath:
      return "thread-death";
    case FaultSite::kXDrop:
      return "x-drop";
    case FaultSite::kXStall:
      return "x-stall";
    case FaultSite::kShardStall:
      return "shard-stall";
    case FaultSite::kAdmissionReject:
      return "admission-reject";
  }
  return "unknown";
}

void Tracer::RecordSlow(const Event& event) {
  internal::Segment* seg = tail_;
  if (seg == nullptr || seg->count == internal::kSegmentCapacity ||
      (seg->count > 0 && static_cast<uint64_t>(event.time_us) -
                                 static_cast<uint64_t>(seg->last_time) >
                             0xffffffffull)) {
    seg = RollSegment();
  }
  uint32_t dt = 0;
  if (seg->count == 0) {
    seg->base_time = event.time_us;
  } else {
    dt = static_cast<uint32_t>(event.time_us - seg->last_time);
  }
  internal::PackedEvent& r = seg->records[seg->count++];
  r.dt_us = dt;
  r.priority = event.priority;
  r.processor = event.processor;
  r.thread = event.thread;
  const bool wide = (event.object | event.arg) > 0xffffffffull ||
                    ((event.thread_sym | event.object_sym) >> 16) != 0;
  if (wide) {
    r.type_flags = static_cast<uint8_t>(event.type) | internal::kWideFlag;
    r.object = static_cast<uint32_t>(seg->wide.size());
    r.arg = 0;
    r.thread_sym = 0;
    r.object_sym = 0;
    seg->wide.push_back(event);
  } else {
    r.type_flags = static_cast<uint8_t>(event.type);
    r.object = static_cast<uint32_t>(event.object);
    r.arg = static_cast<uint32_t>(event.arg);
    r.thread_sym = static_cast<uint16_t>(event.thread_sym);
    r.object_sym = static_cast<uint16_t>(event.object_sym);
  }
  seg->last_time = event.time_us;
  ++size_;
}

std::unique_ptr<internal::Segment> Tracer::NewSegment() {
  if (!freelist_.empty()) {
    std::unique_ptr<internal::Segment> seg = std::move(freelist_.back());
    freelist_.pop_back();
    return seg;
  }
  return std::make_unique<internal::Segment>();
}

internal::Segment* Tracer::RollSegment() {
  if (sink_ != nullptr) {
    // Streaming: every complete segment folds to the sink and recycles, so in steady state
    // exactly one segment (the open tail) is live.
    for (std::unique_ptr<internal::Segment>& seg : segments_) {
      DrainSegmentToSink(*seg);
      Recycle(std::move(seg));
    }
    segments_.clear();
  }
  std::unique_ptr<internal::Segment> seg = NewSegment();
  seg->Reset(size_);
  tail_ = seg.get();
  segments_.push_back(std::move(seg));
  if (ring_limit_ > 0) {
    // Flight recorder: evict whole segments from the front while the events behind them still
    // meet the retention floor. The open (empty) tail never counts toward the floor.
    while (segments_.size() > 1 &&
           retained() - segments_.front()->count >= ring_limit_) {
      dropped_ += segments_.front()->count;
      Recycle(std::move(segments_.front()));
      segments_.erase(segments_.begin());
    }
  }
  return tail_;
}

void Tracer::DrainSegmentToSink(const internal::Segment& seg) {
  Usec prev = seg.base_time;
  for (uint32_t i = 0; i < seg.count; ++i) {
    Event e = seg.Decode(i, prev);
    prev = e.time_us;
    sink_->Consume(e);
  }
  streamed_ += seg.count;
}

void Tracer::FlushSink() {
  if (sink_ == nullptr) {
    return;
  }
  for (std::unique_ptr<internal::Segment>& seg : segments_) {
    DrainSegmentToSink(*seg);
    Recycle(std::move(seg));
  }
  segments_.clear();
  tail_ = nullptr;
}

EventRange Tracer::view(size_t from) const {
  const size_t lo = first_retained();
  if (from < lo) {
    from = lo;
  }
  if (from >= size_ || segments_.empty()) {
    return EventRange();
  }
  // Last segment whose first_index <= from.
  size_t a = 0;
  size_t b = segments_.size();
  while (b - a > 1) {
    size_t mid = a + (b - a) / 2;
    if (segments_[mid]->first_index <= from) {
      a = mid;
    } else {
      b = mid;
    }
  }
  const internal::Segment& seg = *segments_[a];
  const uint32_t pos = static_cast<uint32_t>(from - seg.first_index);
  // dt_us is valid even for wide records, so the prefix sum lands on the previous event's
  // time without decoding the wide table.
  Usec prev = seg.base_time;
  for (uint32_t i = 0; i < pos; ++i) {
    prev += seg.records[i].dt_us;
  }
  EventCursor c;
  c.segments_ = &segments_;
  c.seg_ = a;
  c.pos_ = pos;
  c.index_ = from;
  c.remaining_ = size_ - from;
  c.prev_time_ = prev;
  c.current_ = seg.Decode(pos, prev);
  return EventRange(c);
}

std::vector<Event> Tracer::CopyEvents() const {
  std::vector<Event> out;
  out.reserve(retained());
  for (const Event& e : view()) {
    out.push_back(e);
  }
  return out;
}

void Tracer::TruncateTo(size_t n) {
  if (n >= size_) {
    return;
  }
  while (!segments_.empty() && segments_.back()->first_index >= n) {
    Recycle(std::move(segments_.back()));
    segments_.pop_back();
  }
  size_ = n;
  if (segments_.empty()) {
    tail_ = nullptr;
    return;
  }
  internal::Segment& seg = *segments_.back();
  seg.count = static_cast<uint32_t>(n - seg.first_index);
  Usec t = seg.base_time;
  uint32_t wides = 0;
  for (uint32_t i = 0; i < seg.count; ++i) {
    t += seg.records[i].dt_us;
    if (seg.records[i].type_flags & internal::kWideFlag) {
      ++wides;
    }
  }
  seg.last_time = t;
  seg.wide.resize(wides);
  tail_ = &seg;
}

void Tracer::Clear() {
  for (std::unique_ptr<internal::Segment>& seg : segments_) {
    Recycle(std::move(seg));
  }
  segments_.clear();
  tail_ = nullptr;
  size_ = 0;
  dropped_ = 0;
  streamed_ = 0;
  window_start_ = 0;  // a cleared log starts a fresh measurement window
}

SegmentArena Tracer::TakeEventBuffer() {
  SegmentArena arena;
  arena.segments = std::move(segments_);
  for (std::unique_ptr<internal::Segment>& seg : freelist_) {
    arena.segments.push_back(std::move(seg));
  }
  segments_.clear();
  freelist_.clear();
  tail_ = nullptr;
  size_ = 0;
  dropped_ = 0;
  streamed_ = 0;
  return arena;
}

void Tracer::AdoptEventBuffer(SegmentArena arena) {
  Clear();
  for (std::unique_ptr<internal::Segment>& seg : arena.segments) {
    Recycle(std::move(seg));
  }
}

void Tracer::Dump(std::ostream& os, Usec from_us, Usec to_us, size_t limit) const {
  if (first_retained() > 0) {
    os << "... " << first_retained() << " earlier event(s) "
       << (streamed_ > 0 ? "streamed out" : "dropped by the ring") << " (showing "
       << retained() << " retained of " << size_ << " recorded)\n";
  }
  size_t emitted = 0;
  size_t suppressed = 0;
  for (const Event& e : view()) {
    if (e.time_us < from_us) {
      continue;
    }
    if (e.time_us >= to_us) {
      break;
    }
    if (emitted >= limit) {
      // Keep scanning so the marker can say exactly how much of the window was cut off.
      ++suppressed;
      continue;
    }
    os << std::setw(12) << e.time_us << "us p" << e.processor << " t" << e.thread;
    if (std::string_view name = symbols_.Name(e.thread_sym); !name.empty()) {
      os << "(" << name << ")";
    }
    os << " pri" << static_cast<int>(e.priority) << " " << EventTypeName(e.type);
    if (e.object != 0) {
      os << " obj=" << e.object;
      if (std::string_view name = symbols_.Name(e.object_sym); !name.empty()) {
        os << "(" << name << ")";
      }
    }
    if (e.arg != 0) {
      os << " arg=" << e.arg;
    }
    os << "\n";
    ++emitted;
  }
  if (suppressed > 0) {
    os << "... truncated (" << suppressed << " more events)\n";
  }
}

}  // namespace trace
