// String interning for trace events.
//
// Thread and object names are recorded once per name, not once per event: the runtime interns
// each name into the tracer's SymbolTable and events carry 32-bit symbol ids. This keeps the
// Record hot path free of string copies while dumps, serialization, census and stats can still
// render human-readable names.

#ifndef SRC_TRACE_SYMBOL_H_
#define SRC_TRACE_SYMBOL_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace trace {

// Symbol 0 is always the empty string, so a zero-initialized Event renders namelessly.
class SymbolTable {
 public:
  SymbolTable() { Intern(std::string_view()); }

  // Copying rebuilds the index: the map keys are views into names_, so a copied index would
  // dangle into the source table. Moving a deque keeps its heap blocks, so moves are default.
  SymbolTable(const SymbolTable& other) : names_(other.names_) { Reindex(); }
  SymbolTable& operator=(const SymbolTable& other) {
    if (this != &other) {
      names_ = other.names_;
      Reindex();
    }
    return *this;
  }
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;

  // Returns the id for `name`, interning it on first sight. Ids are dense and assigned in
  // interning order, so a deterministic run produces a deterministic table.
  uint32_t Intern(std::string_view name) {
    auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;
    }
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);  // deque: stable storage, views into it never move
    index_.emplace(names_.back(), id);
    return id;
  }

  // Name for an id; unknown ids render as empty (robust against partial tables from old trace
  // files).
  std::string_view Name(uint32_t id) const {
    return id < names_.size() ? std::string_view(names_[id]) : std::string_view();
  }

  size_t size() const { return names_.size(); }

  void Clear() {
    names_.clear();
    index_.clear();
    Intern(std::string_view());
  }

  // Forgets every symbol with id >= n, rolling the table back to an earlier interning point
  // (checkpoint restore; ids are dense and assigned in order, so a prefix is a valid table).
  void TruncateTo(size_t n) {
    while (names_.size() > std::max<size_t>(n, 1)) {
      index_.erase(std::string_view(names_.back()));
      names_.pop_back();
    }
  }

 private:
  void Reindex() {
    index_.clear();
    for (uint32_t id = 0; id < names_.size(); ++id) {
      index_.emplace(names_[id], id);
    }
  }

  std::deque<std::string> names_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace trace

#endif  // SRC_TRACE_SYMBOL_H_
