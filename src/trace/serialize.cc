#include "src/trace/serialize.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace trace {

namespace {
constexpr char kHeader[] = "pcr-trace v1";
}  // namespace

size_t WriteTrace(std::ostream& os, const Tracer& tracer) {
  os << kHeader << "\n";
  for (const Event& e : tracer.events()) {
    os << e.time_us << '\t' << static_cast<int>(e.type) << '\t'
       << static_cast<int>(e.priority) << '\t' << e.processor << '\t' << e.thread << '\t'
       << e.object << '\t' << e.arg << '\n';
  }
  return tracer.size();
}

int64_t ReadTrace(std::istream& is, Tracer* tracer) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return -1;
  }
  int64_t count = 0;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    Event e;
    int64_t time = 0;
    int type = 0;
    int priority = 0;
    uint32_t processor = 0;
    if (!(fields >> time >> type >> priority >> processor >> e.thread >> e.object >> e.arg)) {
      return -1;
    }
    e.time_us = time;
    e.type = static_cast<EventType>(type);
    e.priority = static_cast<uint8_t>(priority);
    e.processor = static_cast<uint16_t>(processor);
    tracer->Record(e);
    ++count;
  }
  return count;
}

bool SaveTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteTrace(out, tracer);
  return static_cast<bool>(out);
}

bool LoadTraceFile(const std::string& path, Tracer* tracer) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  return ReadTrace(in, tracer) >= 0;
}

}  // namespace trace
