#include "src/trace/serialize.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace trace {

namespace {
constexpr char kHeaderV1[] = "pcr-trace v1";
constexpr char kHeaderV2[] = "pcr-trace v2";
// v2 symbol lines: "#sym\t<id>\t<name to end of line>". They precede the event records so a
// streaming reader has the table before the first event that references it.
constexpr char kSymPrefix[] = "#sym\t";
}  // namespace

size_t WriteTrace(std::ostream& os, const Tracer& tracer) {
  os << kHeaderV2 << "\n";
  const SymbolTable& symbols = tracer.symbols();
  for (uint32_t id = 1; id < symbols.size(); ++id) {  // id 0 is always ""
    os << kSymPrefix << id << '\t' << symbols.Name(id) << '\n';
  }
  for (const Event& e : tracer.view()) {
    os << e.time_us << '\t' << static_cast<int>(e.type) << '\t'
       << static_cast<int>(e.priority) << '\t' << e.processor << '\t' << e.thread << '\t'
       << e.object << '\t' << e.arg << '\t' << e.thread_sym << '\t' << e.object_sym << '\n';
  }
  return tracer.size();
}

int64_t ReadTrace(std::istream& is, Tracer* tracer) {
  std::string line;
  if (!std::getline(is, line) || (line != kHeaderV1 && line != kHeaderV2)) {
    return -1;
  }
  bool v2 = line == kHeaderV2;
  // File symbol id -> id in the target tracer's table (which may already hold other names when
  // appending to a used tracer).
  std::vector<uint32_t> sym_map(1, 0);
  auto remap = [&sym_map](uint32_t file_id) -> uint32_t {
    return file_id < sym_map.size() ? sym_map[file_id] : 0;
  };
  int64_t count = 0;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (v2 && line.compare(0, sizeof(kSymPrefix) - 1, kSymPrefix) == 0) {
      size_t tab = line.find('\t', sizeof(kSymPrefix) - 1);
      if (tab == std::string::npos) {
        return -1;
      }
      const char* id_begin = line.c_str() + sizeof(kSymPrefix) - 1;
      char* id_end = nullptr;
      unsigned long parsed = std::strtoul(id_begin, &id_end, 10);
      if (id_end != line.c_str() + tab) {
        return -1;
      }
      uint32_t file_id = static_cast<uint32_t>(parsed);
      if (file_id != sym_map.size()) {
        return -1;  // symbol lines must be dense and in order
      }
      sym_map.push_back(tracer->symbols().Intern(line.substr(tab + 1)));
      continue;
    }
    std::istringstream fields(line);
    Event e;
    int64_t time = 0;
    int type = 0;
    int priority = 0;
    uint32_t processor = 0;
    if (!(fields >> time >> type >> priority >> processor >> e.thread >> e.object >> e.arg)) {
      return -1;
    }
    if (v2) {
      uint32_t thread_sym = 0;
      uint32_t object_sym = 0;
      if (!(fields >> thread_sym >> object_sym)) {
        return -1;
      }
      e.thread_sym = remap(thread_sym);
      e.object_sym = remap(object_sym);
    }
    e.time_us = time;
    e.type = static_cast<EventType>(type);
    e.priority = static_cast<uint8_t>(priority);
    e.processor = static_cast<uint16_t>(processor);
    tracer->Record(e);
    ++count;
  }
  return count;
}

bool SaveTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteTrace(out, tracer);
  return static_cast<bool>(out);
}

bool LoadTraceFile(const std::string& path, Tracer* tracer) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  return ReadTrace(in, tracer) >= 0;
}

}  // namespace trace
