#include "src/trace/histogram.h"

#include <sstream>

namespace trace {

std::string Histogram::Render(int max_bar_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream os;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) {
      continue;
    }
    int64_t lo = static_cast<int64_t>(b) * width_;
    if (b + 1 == counts_.size()) {
      os << "[" << lo << ", inf) ";
    } else {
      os << "[" << lo << ", " << lo + width_ << ") ";
    }
    os << counts_[b] << " ";
    int bar = static_cast<int>(counts_[b] * max_bar_width / peak);
    for (int i = 0; i < bar; ++i) {
      os << '#';
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace trace
