// Structural validation of event traces.
//
// A well-formed trace obeys invariants no workload can legally break: time is monotone, monitor
// enters/exits balance per monitor with consistent ownership, threads start before they act and
// never act after exiting, every completed wait was preceded by its WAIT. ValidateTrace checks
// them all; the stress and world tests run it so scheduler regressions surface as structured
// errors rather than downstream weirdness.

#ifndef SRC_TRACE_VALIDATE_H_
#define SRC_TRACE_VALIDATE_H_

#include <string>
#include <vector>

#include "src/trace/tracer.h"

namespace trace {

struct ValidationResult {
  std::vector<std::string> errors;  // empty = valid
  bool ok() const { return errors.empty(); }
  std::string ToString() const;
};

ValidationResult ValidateTrace(const Tracer& tracer);

}  // namespace trace

#endif  // SRC_TRACE_VALIDATE_H_
