// Always-on runtime metrics: named counters and log2-bucket histograms.
//
// The tracer answers "what happened, exactly, in order" — at ~40 bytes per event. Production
// runs (the ROADMAP's heavy-traffic north star) need the complementary channel: cheap counters
// that survive with tracing off and summarize a run in O(metrics), not O(events). The hot path
// is one predicted branch plus an integer add; registration (the string lookup) happens once,
// at object-construction time, never per event.
//
// The whole layer compiles out with -DPCR_METRICS=0 (CMake option PCR_METRICS=OFF): the
// registry type survives so tools still link, but every instrumentation site in the runtime
// collapses to nothing and the registry stays empty.

#ifndef SRC_TRACE_METRICS_H_
#define SRC_TRACE_METRICS_H_

// Compile-time guard for the instrumentation sites. 1 (default): metric updates are emitted,
// gated at runtime by pcr::Config::metrics. 0: MetricAdd/MetricRecord are empty inlines and the
// runtime never registers anything.
#ifndef PCR_METRICS
#define PCR_METRICS 1
#endif

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

namespace trace {

// A monotonically growing named count. Stable address for the registry's lifetime, so hot paths
// cache the pointer and never repeat the name lookup.
class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  int64_t value_ = 0;
};

// Power-of-two-bucket histogram: bucket i counts samples whose value v satisfies
// floor(log2(v)) == i - 1, i.e. bucket 0 holds v <= 0, bucket 1 holds v == 1, bucket 2 holds
// 2-3, bucket 3 holds 4-7, ... Fixed storage, no allocation on Record.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t value) {
    buckets_[BucketIndex(value)] += 1;
    count_ += 1;
    sum_ += value;
    if (value > max_) {
      max_ = value;
    }
  }

  // Bucket index a value lands in (see class comment for the mapping).
  static int BucketIndex(int64_t value) {
    if (value <= 0) {
      return 0;
    }
    return 64 - __builtin_clzll(static_cast<uint64_t>(value));
  }
  // Smallest value belonging to `bucket` (0 for the v <= 0 bucket).
  static int64_t BucketFloor(int bucket) {
    return bucket <= 0 ? 0 : static_cast<int64_t>(1) << (bucket - 1);
  }

  uint64_t bucket_count(int bucket) const { return buckets_[bucket]; }
  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  void Reset() {
    for (uint64_t& b : buckets_) {
      b = 0;
    }
    count_ = 0;
    sum_ = 0;
    max_ = 0;
  }

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

// Name -> metric maps with stable addresses (std::map nodes never move). Lookups happen at
// registration only; the returned pointers are the hot-path handles.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name) {
    return &counters_.try_emplace(std::string(name)).first->second;
  }
  Log2Histogram* histogram(std::string_view name) {
    return &histograms_.try_emplace(std::string(name)).first->second;
  }

  // Read-only lookups for tests and tools; nullptr when never registered.
  const Counter* FindCounter(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
  }
  const Log2Histogram* FindHistogram(std::string_view name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  size_t counter_count() const { return counters_.size(); }
  size_t histogram_count() const { return histograms_.size(); }

  // Zeroes every value but keeps registrations (cached pointers stay valid).
  void Reset();

  // Deterministic JSON snapshot (names sorted, stable layout):
  //   {"counters": {"sched.dispatches": 123, ...},
  //    "histograms": {"cv.wait_us.notified": {"count": n, "sum": s, "max": m,
  //                                           "buckets": [c0, c1, ...]}, ...}}
  // Histogram bucket arrays stop at the last non-zero bucket; bucket i covers values in
  // [BucketFloor(i), BucketFloor(i + 1)).
  void WriteJson(std::ostream& os) const;

 private:
  // Heterogeneous comparator so string_view lookups don't allocate.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Log2Histogram, std::less<>> histograms_;
};

// Null-tolerant update helpers: instrumentation sites hold nullptr when metrics are disabled
// (or compiled out), so the fast path is a single predicted branch.
inline void MetricAdd(Counter* counter, int64_t n = 1) {
#if PCR_METRICS
  if (counter != nullptr) {
    counter->Add(n);
  }
#else
  (void)counter;
  (void)n;
#endif
}

inline void MetricRecord(Log2Histogram* histogram, int64_t value) {
#if PCR_METRICS
  if (histogram != nullptr) {
    histogram->Record(value);
  }
#else
  (void)histogram;
  (void)value;
#endif
}

}  // namespace trace

#endif  // SRC_TRACE_METRICS_H_
