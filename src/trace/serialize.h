// Trace serialization: save a run's event history to disk and load it back, so traces can be
// archived, diffed across runs, or analyzed by external tooling. The format is a versioned
// tab-separated text file — grep-able, like the authors' own event histories.

#ifndef SRC_TRACE_SERIALIZE_H_
#define SRC_TRACE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/trace/tracer.h"

namespace trace {

// Writes every recorded event. Returns the number of events written.
size_t WriteTrace(std::ostream& os, const Tracer& tracer);

// Parses a trace written by WriteTrace into `tracer` (appending). Returns the number of events
// read, or -1 if the header is missing/unsupported or a record is malformed.
int64_t ReadTrace(std::istream& is, Tracer* tracer);

// Convenience file wrappers. Return false on I/O failure.
bool SaveTraceFile(const std::string& path, const Tracer& tracer);
bool LoadTraceFile(const std::string& path, Tracer* tracer);

}  // namespace trace

#endif  // SRC_TRACE_SERIALIZE_H_
