#include "src/fault/fault.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "src/pcr/errors.h"
#include "src/trace/event.h"

namespace fault {

namespace {

std::string FormatRate(double rate) {
  char buf[64];
  // %.17g round-trips any double exactly, keeping Encode(Decode(x)) == canonical form of x.
  std::snprintf(buf, sizeof(buf), "%.17g", rate);
  return buf;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

uint64_t ParseU64(const std::string& text, const std::string& what) {
  char* end = nullptr;
  uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    throw pcr::UsageError("fault: bad " + what + " in plan: '" + text + "'");
  }
  return value;
}

}  // namespace

bool ParseFaultSite(const std::string& name, FaultSite* out) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    if (name == trace::FaultSiteName(site)) {
      *out = site;
      return true;
    }
  }
  return false;
}

std::string Plan::Encode() const {
  std::string text = "f1";
  if (seed != 1) {
    text += ",seed=" + std::to_string(seed);
  }
  if (rate > 0) {
    text += ",rate=" + FormatRate(rate);
    if (value != 1) {
      text += ",val=" + std::to_string(value);
    }
    std::string sites;
    for (int i = 0; i < kNumFaultSites; ++i) {
      if (site_mask & (1u << i)) {
        if (!sites.empty()) {
          sites += '+';
        }
        sites += trace::FaultSiteName(static_cast<FaultSite>(i));
      }
    }
    text += ",sites=" + sites;
  }
  for (const ScriptedFault& s : script) {
    text += ',';
    text += trace::FaultSiteName(s.site);
    text += '@' + std::to_string(s.index);
    if (s.value != 1) {
      text += '~' + std::to_string(s.value);
    }
  }
  return text;
}

Plan Plan::Decode(const std::string& text) {
  Plan plan;
  if (text.empty()) {
    return plan;
  }
  std::vector<std::string> parts = SplitOn(text, ',');
  if (parts.empty() || parts[0] != "f1") {
    throw pcr::UsageError("fault: plan must start with 'f1': '" + text + "'");
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (part.empty()) {
      throw pcr::UsageError("fault: empty directive in plan: '" + text + "'");
    }
    size_t eq = part.find('=');
    if (eq != std::string::npos) {
      std::string key = part.substr(0, eq);
      std::string val = part.substr(eq + 1);
      if (key == "seed") {
        plan.seed = ParseU64(val, "seed");
      } else if (key == "rate") {
        char* end = nullptr;
        plan.rate = std::strtod(val.c_str(), &end);
        if (val.empty() || end == nullptr || *end != '\0' || plan.rate < 0 || plan.rate > 1) {
          throw pcr::UsageError("fault: bad rate in plan: '" + val + "'");
        }
      } else if (key == "val") {
        plan.value = ParseU64(val, "val");
      } else if (key == "sites") {
        for (const std::string& name : SplitOn(val, '+')) {
          FaultSite site;
          if (!ParseFaultSite(name, &site)) {
            throw pcr::UsageError("fault: unknown site '" + name + "' in plan");
          }
          plan.site_mask |= SiteBit(site);
        }
      } else {
        throw pcr::UsageError("fault: unknown directive '" + key + "' in plan");
      }
      continue;
    }
    // Scripted entry: <site>@<index>[~<value>]
    size_t at = part.find('@');
    if (at == std::string::npos) {
      throw pcr::UsageError("fault: bad directive '" + part + "' in plan");
    }
    ScriptedFault scripted;
    if (!ParseFaultSite(part.substr(0, at), &scripted.site)) {
      throw pcr::UsageError("fault: unknown site '" + part.substr(0, at) + "' in plan");
    }
    std::string rest = part.substr(at + 1);
    size_t tilde = rest.find('~');
    if (tilde != std::string::npos) {
      scripted.value = ParseU64(rest.substr(tilde + 1), "value");
      rest = rest.substr(0, tilde);
    }
    scripted.index = ParseU64(rest, "index");
    if (plan.script.size() >= kMaxPlanScriptEntries) {
      throw pcr::UsageError("fault: plan script exceeds " +
                            std::to_string(kMaxPlanScriptEntries) + " entries");
    }
    plan.script.push_back(scripted);
  }
  return plan;
}

Plan MutatePlan(const Plan& plan, std::mt19937_64& rng) {
  Plan out = plan;
  auto draw = [&rng](uint64_t n) { return n == 0 ? 0 : rng() % n; };
  switch (draw(6)) {
    case 0:  // append a scripted fault; biased toward early consult indices
      if (out.script.size() < kMaxPlanScriptEntries) {
        ScriptedFault s;
        s.site = static_cast<FaultSite>(draw(kNumFaultSites));
        s.index = draw(16);
        s.value = 1 + draw(3);
        out.script.push_back(s);
      }
      break;
    case 1:  // drop one scripted entry
      if (!out.script.empty()) {
        out.script.erase(out.script.begin() + static_cast<ptrdiff_t>(draw(out.script.size())));
      }
      break;
    case 2:  // re-aim one scripted entry
      if (!out.script.empty()) {
        ScriptedFault& s = out.script[draw(out.script.size())];
        if (draw(2) == 0) {
          s.index = draw(32);
        } else {
          s.value = 1 + draw(4);
        }
      }
      break;
    case 3:  // redraw the probabilistic seed (re-sweeps every rate draw)
      out.seed = rng() | 1;
      break;
    case 4: {  // arm or re-arm a small probabilistic rate over a random site set
      out.rate = 0.01 * static_cast<double>(1 + draw(10));
      out.site_mask = static_cast<uint32_t>(1 + draw((1u << kNumFaultSites) - 1));
      break;
    }
    default:  // disarm the probabilistic layer; scripted entries survive
      out.rate = 0;
      out.site_mask = 0;
      break;
  }
  return out;
}

Injector::Injector(Plan plan) : plan_(std::move(plan)), rng_(plan_.seed) {}

void Injector::set_plan(Plan plan) {
  plan_ = std::move(plan);
  Reset();
}

void Injector::Reset() {
  rng_.seed(plan_.seed);
  for (uint64_t& c : consults_) {
    c = 0;
  }
  fired_.clear();
}

uint64_t Injector::OnFaultPoint(FaultSite site) {
  uint64_t index = consults_[static_cast<unsigned>(site)]++;
  uint64_t value = 0;
  for (const ScriptedFault& s : plan_.script) {
    if (s.site == site && s.index == index) {
      value = s.value;
      break;
    }
  }
  if (value == 0 && plan_.rate > 0 && (plan_.site_mask & SiteBit(site)) != 0) {
    // One RNG step per consult at an armed site, and only there: arming or scripting one site
    // never shifts another site's draw sequence.
    double draw = static_cast<double>(rng_() >> 11) * 0x1.0p-53;
    if (draw < plan_.rate) {
      value = plan_.value;
    }
  }
  if (value != 0) {
    fired_.push_back(ScriptedFault{site, index, value});
  }
  return value;
}

}  // namespace fault
