// Deterministic fault injection: seeded, replayable plans driving the runtime's FaultPoint
// hook (src/pcr/fault_point.h).
//
// The paper's Section 5.4 is a catalogue of how Cedar/GVX fail when the runtime fails them:
// FORK failure "treated as a fatal error" because no call site handles it, missing notifies
// masked by CV timeouts, threads dying inside monitors and wedging every later entrant. A
// fault::Plan makes those failures an *input*: the same plan plus the same schedule seed
// reproduces the same faults at the same decision points on every run, so the explorer can
// search fault x schedule space and hand back a minimized, replayable repro string.
//
// Plan grammar (serialized into the optional 5th field of a pcr1 repro string, so it must
// avoid ':'): comma-separated directives after an "f1" version tag.
//
//   f1[,seed=N][,rate=R[,val=V],sites=a+b+c][,<site>@<index>[~<value>]...]
//
//   seed=N        RNG seed for probabilistic firing (default 1)
//   rate=R        probability in [0,1] that a consult at an armed site fires
//   val=V         magnitude a rate-draw fires with (default 1; quanta for timer-skew/x-stall)
//   sites=a+b     '+'-separated armed site names (see trace::FaultSiteName)
//   site@idx~v    scripted fault: the idx-th consult (0-based) at `site` fires with value v
//                 (~v optional, default 1). Scripted entries win over rate draws.
//
// Examples: "f1,rate=0.01,sites=notify-lost+timer-skew,seed=7" or "f1,notify-lost@2".

#ifndef SRC_FAULT_FAULT_H_
#define SRC_FAULT_FAULT_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/pcr/fault_point.h"

namespace fault {

using pcr::FaultSite;
using pcr::kNumFaultSites;

// One scripted firing: the `index`-th consult at `site` fires with `value`.
struct ScriptedFault {
  FaultSite site = FaultSite::kFork;
  uint64_t index = 0;
  uint64_t value = 1;

  bool operator==(const ScriptedFault&) const = default;
};

// A complete, self-describing fault plan. Value-semantic; Encode/Decode round-trips exactly.
struct Plan {
  uint64_t seed = 1;      // probabilistic-firing RNG seed
  double rate = 0;        // per-consult firing probability at armed sites
  uint64_t value = 1;     // magnitude for rate-drawn firings
  uint32_t site_mask = 0; // bit i set = FaultSite(i) armed for probabilistic firing
  std::vector<ScriptedFault> script;

  // A disabled plan never fires; installing it is equivalent to no injector.
  bool enabled() const { return (rate > 0 && site_mask != 0) || !script.empty(); }

  std::string Encode() const;
  // Parses the grammar above ("" and "f1" give a disabled plan). Throws pcr::UsageError on
  // malformed input.
  static Plan Decode(const std::string& text);

  bool operator==(const Plan&) const = default;
};

// Bit for one site in Plan::site_mask.
inline constexpr uint32_t SiteBit(FaultSite site) {
  return 1u << static_cast<unsigned>(site);
}

// Plan::Decode rejects scripts longer than this with a clear UsageError. Real plans carry a
// handful of entries (one per fault that must fire); the cap exists so a hostile or corrupted
// repro's fifth field cannot make the decoder build an unbounded script.
inline constexpr size_t kMaxPlanScriptEntries = 4096;

// Deterministic single-step plan mutation for the fuzzing campaign (src/explore/campaign.h):
// draws everything from `rng` (seeded by the caller, never wall-clock), so the same plan and
// the same RNG state always produce the same offspring. One call applies one of:
//   * append a scripted fault at a random (site, consult index, value);
//   * drop or re-aim (index/value) an existing scripted entry;
//   * redraw the probabilistic seed ("re-sweep" the rate draws);
//   * arm/alter a small probabilistic rate over a random site set, or disarm it.
// Scripted growth is capped at kMaxPlanScriptEntries so evolved plans always re-encode.
Plan MutatePlan(const Plan& plan, std::mt19937_64& rng);

// Site name lookup (inverse of trace::FaultSiteName). Returns false for unknown names.
bool ParseFaultSite(const std::string& name, FaultSite* out);

// The FaultInjector a Plan drives. Deterministic: consults are counted per site, scripted
// entries match on (site, consult index), and probabilistic draws take one RNG step per
// consult at an *armed* site only — so arming one site never changes another site's draws,
// which is what lets Minimize convert rate-fired plans into scripted ones.
class Injector : public pcr::FaultInjector {
 public:
  explicit Injector(Plan plan = {});

  uint64_t OnFaultPoint(FaultSite site) override;

  // Rewinds consult counters, the RNG, and the firing log for a fresh run of the same plan.
  void Reset();

  const Plan& plan() const { return plan_; }
  void set_plan(Plan plan);

  // Everything that fired, in firing order: (site, consult index at that site, value).
  const std::vector<ScriptedFault>& fired() const { return fired_; }
  uint64_t consults(FaultSite site) const {
    return consults_[static_cast<unsigned>(site)];
  }

 private:
  Plan plan_;
  std::mt19937_64 rng_;
  uint64_t consults_[kNumFaultSites] = {};
  std::vector<ScriptedFault> fired_;
};

}  // namespace fault

#endif  // SRC_FAULT_FAULT_H_
