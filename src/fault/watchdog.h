// In-simulation runtime watchdog: a daemon thread that detects the paper's failure patterns
// *while the program runs*, instead of in post-hoc trace analysis.
//
//   * Deadlock: maintains the wait-for graph (blocked thread -> monitor -> owner) and reports
//     any cycle — the situation the Section 4.4 lock-ordering paradigm exists to prevent.
//   * Starvation: flags threads that have been runnable for >= N quanta without ever being
//     dispatched — the paper's stable priority inversion (Section 5.2), detected at runtime
//     rather than by the SystemDaemon's random charity.
//   * Missing notify: a watched condition variable whose waits only ever exit by timeout while
//     threads still wait on it — the Section 5.3 bug class that "a timeout masks".
//   * Backlog growth: a watched queue whose depth grows monotonically for N consecutive scans —
//     the open-loop overload signature (arrivals outpacing service with no admission control,
//     docs/WORLDS.md) that ends in unbounded memory if nobody sheds load.
//
// Reports go four ways at once: the on_report callback, an optional recovery callback, a
// kWatchdogReport trace event (visible in Chrome exports), and watchdog.* metrics.

#ifndef SRC_FAULT_WATCHDOG_H_
#define SRC_FAULT_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pcr/condition.h"
#include "src/pcr/runtime.h"

namespace fault {

enum class ReportKind : uint8_t {
  kDeadlock,       // threads = the wait-for cycle, in chain order
  kStarvation,     // threads = the starved thread
  kMissingNotify,  // detail names the condition variable
  kBacklogGrowth,  // detail names the watched queue and its depth
};

std::string_view ReportKindName(ReportKind kind);

struct WatchdogReport {
  ReportKind kind = ReportKind::kDeadlock;
  std::vector<pcr::ThreadId> threads;
  std::string detail;       // human-readable one-liner
  pcr::Usec time = 0;       // virtual time of detection
};

struct WatchdogOptions {
  pcr::Usec period = 200 * pcr::kUsecPerMsec;  // scan cadence (virtual time)
  int priority = pcr::kMaxPriority;            // daemon priority; must outrank the suspects
  int starvation_quanta = 8;       // ready this many quanta without dispatch = starved
  int missing_notify_min_timeouts = 3;  // timeout-only exits needed before reporting a CV
  int backlog_scans = 4;           // consecutive growth scans before a queue is reported
  bool detect_deadlock = true;
  bool detect_starvation = true;
  bool detect_missing_notify = true;
  bool detect_backlog = true;
  // Called (from the watchdog thread) for every new report, before `recover`.
  std::function<void(const WatchdogReport&)> on_report;
  // Optional recovery hook — e.g. poison a monitor, bump a priority, notify a CV. The
  // "report + optional recovery callback" split keeps policy out of the detector.
  std::function<void(pcr::Runtime&, const WatchdogReport&)> recover;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Forks the detached daemon thread into `rt`. The runtime must outlive the watchdog's last
  // scan (the daemon dies with the runtime's shutdown unwinding). Call at most once.
  void Start(pcr::Runtime& rt);

  // Adds `cv` to the missing-notify scan (the watchdog cannot enumerate CVs on its own; the
  // runtime does not keep a registry). The Condition must outlive the watchdog.
  void WatchCondition(pcr::Condition* cv);

  // Adds a queue to the backlog-growth scan: `depth` is sampled once per scan, and a depth
  // that strictly grew for `backlog_scans` consecutive scans produces one kBacklogGrowth
  // report. Deduped per episode: a reported queue stays quiet until its depth shrinks again,
  // so sustained growth is one report, not one per scan. Whatever `depth` captures must
  // outlive the watchdog; the callback runs on the daemon fiber (or wherever Scan is called).
  void WatchQueue(std::string name, std::function<size_t()> depth);

  // One detection pass; the daemon calls this every period, tests may call it directly.
  void Scan(pcr::Runtime& rt);

  const std::vector<WatchdogReport>& reports() const { return reports_; }
  int64_t scans() const { return scans_; }

 private:
  struct WatchedQueue {
    std::string name;
    std::function<size_t()> depth;
    size_t last_depth = 0;
    int growth_streak = 0;  // consecutive scans where depth strictly grew
    bool reported = false;  // episode flag: cleared when the queue shrinks
  };

  void Report(pcr::Runtime& rt, WatchdogReport report);
  void ScanDeadlocks(pcr::Runtime& rt);
  void ScanStarvation(pcr::Runtime& rt);
  void ScanMissingNotify(pcr::Runtime& rt);
  void ScanBacklog(pcr::Runtime& rt);

  WatchdogOptions options_;
  pcr::ThreadId daemon_tid_ = pcr::kNoThread;
  std::vector<pcr::Condition*> watched_;
  std::vector<WatchedQueue> watched_queues_;
  std::vector<WatchdogReport> reports_;
  int64_t scans_ = 0;
  // Dedup state: a condition is reported when it *becomes* true, not on every scan.
  std::set<std::vector<pcr::ThreadId>> reported_cycles_;        // sorted cycle members
  std::unordered_map<pcr::ThreadId, pcr::Usec> reported_starts_;  // tid -> ready_since reported
  std::set<const pcr::Condition*> reported_cvs_;
  trace::Counter* m_reports_ = nullptr;
  trace::Counter* m_deadlocks_ = nullptr;
  trace::Counter* m_starvations_ = nullptr;
  trace::Counter* m_missing_notifies_ = nullptr;
  trace::Counter* m_backlogs_ = nullptr;
};

}  // namespace fault

#endif  // SRC_FAULT_WATCHDOG_H_
