#include "src/fault/watchdog.h"

#include <algorithm>

#include "src/pcr/errors.h"
#include "src/trace/metrics.h"

namespace fault {

using pcr::BlockReason;
using pcr::Tcb;
using pcr::ThreadId;
using pcr::ThreadState;
using pcr::Usec;

std::string_view ReportKindName(ReportKind kind) {
  switch (kind) {
    case ReportKind::kDeadlock:
      return "deadlock";
    case ReportKind::kStarvation:
      return "starvation";
    case ReportKind::kMissingNotify:
      return "missing-notify";
    case ReportKind::kBacklogGrowth:
      return "backlog-growth";
  }
  return "unknown";
}

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {}

void Watchdog::Start(pcr::Runtime& rt) {
  if (daemon_tid_ != pcr::kNoThread) {
    throw pcr::UsageError("fault: watchdog already started");
  }
  m_reports_ = rt.scheduler().MetricCounter("watchdog.reports");
  m_deadlocks_ = rt.scheduler().MetricCounter("watchdog.deadlocks");
  m_starvations_ = rt.scheduler().MetricCounter("watchdog.starvations");
  m_missing_notifies_ = rt.scheduler().MetricCounter("watchdog.missing_notifies");
  m_backlogs_ = rt.scheduler().MetricCounter("watchdog.backlogs");
  pcr::ForkOptions fork_options;
  fork_options.name = "watchdog";
  fork_options.priority = options_.priority;
  // The daemon dies with the runtime: Sleep throws ThreadKilled at shutdown and the fiber
  // unwinds out of the loop.
  daemon_tid_ = rt.ForkDetached(
      [this, &rt] {
        for (;;) {
          rt.scheduler().Sleep(options_.period);
          Scan(rt);
        }
      },
      std::move(fork_options));
}

void Watchdog::WatchCondition(pcr::Condition* cv) { watched_.push_back(cv); }

void Watchdog::WatchQueue(std::string name, std::function<size_t()> depth) {
  WatchedQueue queue;
  queue.name = std::move(name);
  queue.depth = std::move(depth);
  watched_queues_.push_back(std::move(queue));
}

void Watchdog::Scan(pcr::Runtime& rt) {
  ++scans_;
  if (options_.detect_deadlock) {
    ScanDeadlocks(rt);
  }
  if (options_.detect_starvation) {
    ScanStarvation(rt);
  }
  if (options_.detect_missing_notify) {
    ScanMissingNotify(rt);
  }
  if (options_.detect_backlog) {
    ScanBacklog(rt);
  }
}

void Watchdog::ScanDeadlocks(pcr::Runtime& rt) {
  pcr::Scheduler& s = rt.scheduler();
  const int n = s.thread_count();
  for (ThreadId start = 1; start <= static_cast<ThreadId>(n); ++start) {
    const Tcb* t = s.FindThread(start);
    if (t == nullptr || t->state != ThreadState::kBlocked ||
        t->block_reason != BlockReason::kMonitor) {
      continue;
    }
    // Follow blocked -> monitor -> owner edges until the chain leaves the blocked-on-monitor
    // world (no cycle through `start`) or revisits a member (cycle = that member onward).
    std::vector<ThreadId> chain;
    ThreadId cursor = start;
    bool cycle = false;
    while (cursor != pcr::kNoThread) {
      auto pos = std::find(chain.begin(), chain.end(), cursor);
      if (pos != chain.end()) {
        chain.erase(chain.begin(), pos);
        cycle = true;
        break;
      }
      const Tcb* c = s.FindThread(cursor);
      if (c == nullptr || c->state != ThreadState::kBlocked ||
          c->block_reason != BlockReason::kMonitor) {
        break;
      }
      chain.push_back(cursor);
      cursor = s.MonitorOwnerOf(c->wait_object);
    }
    if (!cycle) {
      continue;
    }
    std::vector<ThreadId> key = chain;
    std::sort(key.begin(), key.end());
    if (!reported_cycles_.insert(std::move(key)).second) {
      continue;  // this cycle was already reported
    }
    WatchdogReport report;
    report.kind = ReportKind::kDeadlock;
    report.threads = chain;
    report.detail = "wait-for cycle:";
    for (ThreadId tid : chain) {
      report.detail += ' ' + s.FindThread(tid)->name;
    }
    Report(rt, std::move(report));
  }
}

void Watchdog::ScanStarvation(pcr::Runtime& rt) {
  pcr::Scheduler& s = rt.scheduler();
  const Usec now = s.now();
  const Usec threshold = static_cast<Usec>(options_.starvation_quanta) * s.config().quantum;
  const int n = s.thread_count();
  for (ThreadId tid = 1; tid <= static_cast<ThreadId>(n); ++tid) {
    if (tid == daemon_tid_) {
      continue;
    }
    const Tcb* t = s.FindThread(tid);
    if (t == nullptr || t->state != ThreadState::kReady || t->ready_since < 0 ||
        now - t->ready_since < threshold) {
      continue;
    }
    // One report per starvation episode: ready_since only changes when the thread is pushed
    // ready again, so an episode already reported stays quiet until the thread actually runs.
    auto it = reported_starts_.find(tid);
    if (it != reported_starts_.end() && it->second == t->ready_since) {
      continue;
    }
    reported_starts_[tid] = t->ready_since;
    WatchdogReport report;
    report.kind = ReportKind::kStarvation;
    report.threads.push_back(tid);
    report.detail = "thread " + t->name + " runnable for " +
                    std::to_string((now - t->ready_since) / s.config().quantum) +
                    " quanta without dispatch (priority " + std::to_string(t->priority) + ")";
    Report(rt, std::move(report));
  }
}

void Watchdog::ScanMissingNotify(pcr::Runtime& rt) {
  for (pcr::Condition* cv : watched_) {
    if (reported_cvs_.count(cv) != 0) {
      continue;
    }
    if (cv->waiter_count() > 0 && cv->notified_exits() == 0 &&
        cv->timeout_exits() >= options_.missing_notify_min_timeouts) {
      reported_cvs_.insert(cv);
      WatchdogReport report;
      report.kind = ReportKind::kMissingNotify;
      report.detail = "condition " + cv->name() + ": " + std::to_string(cv->timeout_exits()) +
                      " waits exited by timeout, none by notify, waiters still queued";
      Report(rt, std::move(report));
    }
  }
}

void Watchdog::ScanBacklog(pcr::Runtime& rt) {
  for (WatchedQueue& queue : watched_queues_) {
    size_t depth = queue.depth();
    if (depth > queue.last_depth) {
      ++queue.growth_streak;
    } else {
      queue.growth_streak = 0;
      if (depth < queue.last_depth) {
        // The queue drained (somebody served or shed it): a later regrowth is a new episode
        // worth a fresh report.
        queue.reported = false;
      }
    }
    queue.last_depth = depth;
    if (queue.growth_streak >= options_.backlog_scans && !queue.reported) {
      queue.reported = true;
      WatchdogReport report;
      report.kind = ReportKind::kBacklogGrowth;
      report.detail = "queue " + queue.name + " grew for " +
                      std::to_string(queue.growth_streak) +
                      " consecutive scans (depth " + std::to_string(depth) + ")";
      Report(rt, std::move(report));
    }
  }
}

void Watchdog::Report(pcr::Runtime& rt, WatchdogReport report) {
  report.time = rt.now();
  rt.scheduler().Emit(trace::EventType::kWatchdogReport,
                      static_cast<pcr::ObjectId>(report.kind),
                      report.threads.empty() ? 0 : report.threads.front());
  rt.scheduler().FlightDump("watchdog report");
  trace::MetricAdd(m_reports_);
  switch (report.kind) {
    case ReportKind::kDeadlock:
      trace::MetricAdd(m_deadlocks_);
      break;
    case ReportKind::kStarvation:
      trace::MetricAdd(m_starvations_);
      break;
    case ReportKind::kMissingNotify:
      trace::MetricAdd(m_missing_notifies_);
      break;
    case ReportKind::kBacklogGrowth:
      trace::MetricAdd(m_backlogs_);
      break;
  }
  reports_.push_back(std::move(report));
  if (options_.on_report) {
    options_.on_report(reports_.back());
  }
  if (options_.recover) {
    options_.recover(rt, reports_.back());
  }
}

}  // namespace fault
